"""Tests for spatiotemporal queries over the archive."""

import pytest

from repro.geo.polygon import BoundingBox, GeoPolygon
from repro.mod.database import MovingObjectDatabase
from repro.mod.queries import nearest_neighbors, range_query, trajectory_similarity
from repro.simulator.world import Port
from repro.tracking.types import CriticalPoint, MovementEventType

PORT_A = Port("alpha", 23.0, 38.0, GeoPolygon.rectangle("pa", 23.0, 38.0, 3000, 3000))
PORT_B = Port("beta", 24.0, 38.0, GeoPolygon.rectangle("pb", 24.0, 38.0, 3000, 3000))


def stop_at(port, timestamp, mmsi=1):
    return CriticalPoint(
        mmsi=mmsi, lon=port.lon, lat=port.lat, timestamp=timestamp,
        annotations=frozenset({MovementEventType.STOP_END}),
    )


def waypoint(lon, lat, timestamp, mmsi=1):
    return CriticalPoint(
        mmsi=mmsi, lon=lon, lat=lat, timestamp=timestamp,
        annotations=frozenset({MovementEventType.TURN}),
    )


@pytest.fixture()
def mod():
    with MovingObjectDatabase([PORT_A, PORT_B]) as database:
        # Vessel 1: alpha -> beta along 38.0N.
        database.stage_points([
            stop_at(PORT_A, 0),
            waypoint(23.3, 38.0, 1000),
            waypoint(23.6, 38.0, 2000),
            stop_at(PORT_B, 3000),
        ])
        # Vessel 2: same route, shifted north and later.
        database.stage_points([
            stop_at(PORT_A, 5000, mmsi=2),
            waypoint(23.3, 38.2, 6000, mmsi=2),
            waypoint(23.6, 38.2, 7000, mmsi=2),
            stop_at(PORT_B, 8000, mmsi=2),
        ])
        database.reconstruct()
        yield database


class TestRangeQuery:
    def test_box_and_time_filter(self, mod):
        box = BoundingBox(23.2, 37.9, 23.7, 38.1)
        hits = range_query(mod, box, 0, 4000)
        assert {h.mmsi for h in hits} == {1}
        assert all(23.2 <= h.lon <= 23.7 for h in hits)

    def test_time_window_excludes(self, mod):
        box = BoundingBox(22.0, 37.0, 25.0, 39.0)
        hits = range_query(mod, box, 0, 4000)
        assert {h.mmsi for h in hits} == {1}
        hits = range_query(mod, box, 0, 9000)
        assert {h.mmsi for h in hits} == {1, 2}

    def test_empty_result(self, mod):
        box = BoundingBox(0.0, 0.0, 1.0, 1.0)
        assert range_query(mod, box, 0, 10_000) == []

    def test_ordered_by_time(self, mod):
        box = BoundingBox(22.0, 37.0, 25.0, 39.0)
        hits = range_query(mod, box, 0, 9000)
        times = [h.timestamp for h in hits]
        assert times == sorted(times)


class TestNearestNeighbors:
    def test_nearest_at_time(self, mod):
        # At t=1000 vessel 1 is at (23.3, 38.0); vessel 2 not yet moving.
        result = nearest_neighbors(mod, 23.3, 38.0, 1000, k=1)
        assert result[0][0] == 1
        assert result[0][1] < 1000.0

    def test_k_limits_results(self, mod):
        result = nearest_neighbors(mod, 23.3, 38.1, 6500, k=2, time_tolerance=9000)
        assert len(result) == 2
        # Sorted by distance.
        assert result[0][1] <= result[1][1]

    def test_time_tolerance_filters(self, mod):
        result = nearest_neighbors(mod, 23.3, 38.0, 50_000, k=5, time_tolerance=100)
        assert result == []

    def test_invalid_k(self, mod):
        with pytest.raises(ValueError, match="k must be"):
            nearest_neighbors(mod, 23.3, 38.0, 1000, k=0)


class TestTrajectorySimilarity:
    def test_parallel_routes_close(self, mod):
        trips = mod.all_trips()
        trip_a = next(t for t in trips if t["mmsi"] == 1)
        trip_b = next(t for t in trips if t["mmsi"] == 2)
        similarity = trajectory_similarity(mod, trip_a["trip_id"], trip_b["trip_id"])
        # ~0.2 degrees of latitude apart: ~22 km mean deviation.
        assert similarity == pytest.approx(20_000, rel=0.3)

    def test_self_similarity_zero(self, mod):
        trip = mod.all_trips()[0]
        assert trajectory_similarity(mod, trip["trip_id"], trip["trip_id"]) == (
            pytest.approx(0.0, abs=1.0)
        )

    def test_invalid_samples(self, mod):
        trip = mod.all_trips()[0]
        with pytest.raises(ValueError, match="samples"):
            trajectory_similarity(mod, trip["trip_id"], trip["trip_id"], samples=1)
