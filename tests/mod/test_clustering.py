"""Tests for spatiotemporal trip clustering."""

import pytest

from repro.geo.polygon import GeoPolygon
from repro.mod.clustering import cluster_trips, spatiotemporal_distance
from repro.mod.database import MovingObjectDatabase
from repro.simulator.world import Port
from repro.tracking.types import CriticalPoint, MovementEventType

PORT_A = Port("alpha", 23.0, 38.0, GeoPolygon.rectangle("pa", 23.0, 38.0, 3000, 3000))
PORT_B = Port("beta", 24.0, 38.0, GeoPolygon.rectangle("pb", 24.0, 38.0, 3000, 3000))


def voyage(mmsi, start, detour_lat=38.0):
    """Alpha-to-beta voyage; ``detour_lat`` bends the mid-route waypoints."""

    def stop(port, t):
        return CriticalPoint(
            mmsi=mmsi, lon=port.lon, lat=port.lat, timestamp=t,
            annotations=frozenset({MovementEventType.STOP_END}),
        )

    def wp(lon, t):
        return CriticalPoint(
            mmsi=mmsi, lon=lon, lat=detour_lat, timestamp=t,
            annotations=frozenset({MovementEventType.TURN}),
        )

    return [
        stop(PORT_A, start),
        wp(23.3, start + 1000),
        wp(23.6, start + 2000),
        stop(PORT_B, start + 3000),
    ]


@pytest.fixture()
def mod():
    with MovingObjectDatabase([PORT_A, PORT_B]) as database:
        # Two near-simultaneous runs of the same route (one cluster),
        # one run of the same route 12 hours later (time separates it),
        # and one spatially distinct route.
        database.stage_points(voyage(1, 0))
        database.stage_points(voyage(2, 600))
        database.stage_points(voyage(3, 43_200))
        database.stage_points(voyage(4, 300, detour_lat=38.6))
        database.reconstruct()
        yield database


class TestClustering:
    def test_simultaneous_same_route_cluster(self, mod):
        clusters = cluster_trips(mod, epsilon_meters=8000.0)
        trips = {t["mmsi"]: t["trip_id"] for t in mod.all_trips()}
        matching = [
            cluster
            for cluster in clusters
            if trips[1] in cluster and trips[2] in cluster
        ]
        assert len(matching) == 1

    def test_temporal_dimension_separates(self, mod):
        # Spatially identical but 12 h apart: different clusters.
        clusters = cluster_trips(mod, epsilon_meters=8000.0)
        trips = {t["mmsi"]: t["trip_id"] for t in mod.all_trips()}
        for cluster in clusters:
            assert not (trips[1] in cluster and trips[3] in cluster)

    def test_spatial_dimension_separates(self, mod):
        clusters = cluster_trips(mod, epsilon_meters=8000.0)
        trips = {t["mmsi"]: t["trip_id"] for t in mod.all_trips()}
        for cluster in clusters:
            assert not (trips[1] in cluster and trips[4] in cluster)

    def test_min_points_drops_noise(self, mod):
        clusters = cluster_trips(mod, epsilon_meters=8000.0, min_points=2)
        assert all(len(cluster) >= 2 for cluster in clusters)

    def test_distance_function_components(self, mod):
        trips = mod.all_trips()
        trip_1 = next(t for t in trips if t["mmsi"] == 1)
        trip_3 = next(t for t in trips if t["mmsi"] == 3)
        # 43,200 s apart at 1 km/h-scale -> 12,000 m temporal penalty.
        distance = spatiotemporal_distance(mod, trip_1, trip_3)
        assert distance >= 12_000.0
