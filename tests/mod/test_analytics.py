"""Tests for offline analytics (Table 4, OD matrices, vessel summaries)."""

import pytest

from repro.geo.polygon import GeoPolygon
from repro.mod.analytics import (
    compute_od_matrix,
    compute_trip_statistics,
    vessel_travel_summary,
)
from repro.mod.database import MovingObjectDatabase
from repro.simulator.world import Port
from repro.tracking.types import CriticalPoint, MovementEventType

PORT_A = Port("alpha", 23.0, 38.0, GeoPolygon.rectangle("pa", 23.0, 38.0, 3000, 3000))
PORT_B = Port("beta", 24.0, 38.0, GeoPolygon.rectangle("pb", 24.0, 38.0, 3000, 3000))


def stop_at(port, timestamp, mmsi=1):
    return CriticalPoint(
        mmsi=mmsi, lon=port.lon, lat=port.lat, timestamp=timestamp,
        annotations=frozenset({MovementEventType.STOP_END}),
    )


def waypoint(lon, timestamp, mmsi=1):
    return CriticalPoint(
        mmsi=mmsi, lon=lon, lat=38.0, timestamp=timestamp,
        annotations=frozenset({MovementEventType.TURN}),
    )


@pytest.fixture()
def mod():
    with MovingObjectDatabase([PORT_A, PORT_B]) as database:
        # Vessel 1 does alpha->beta and beta->alpha; vessel 2 alpha->beta.
        database.stage_points([
            stop_at(PORT_A, 0),
            waypoint(23.5, 1000),
            stop_at(PORT_B, 2000),
            waypoint(23.5, 3000),
            stop_at(PORT_A, 4000),
        ])
        database.stage_points([
            stop_at(PORT_A, 100, mmsi=2),
            waypoint(23.5, 1100, mmsi=2),
            stop_at(PORT_B, 2100, mmsi=2),
        ])
        database.reconstruct()
        yield database


class TestTripStatistics:
    def test_counts(self, mod):
        stats = compute_trip_statistics(mod)
        assert stats.trip_count == 3
        assert stats.vessels_with_trips == 2
        assert stats.average_trips_per_vessel == pytest.approx(1.5)
        assert stats.critical_points_in_trips > 0

    def test_averages(self, mod):
        stats = compute_trip_statistics(mod)
        assert stats.average_travel_time_seconds == pytest.approx(2000.0)
        assert stats.average_distance_meters > 50_000

    def test_format_table(self, mod):
        rendered = compute_trip_statistics(mod).format_table()
        assert "Number of trips between ports" in rendered
        assert "Average trips per vessel" in rendered
        assert "km" in rendered

    def test_empty_archive(self):
        with MovingObjectDatabase([PORT_A]) as empty:
            stats = compute_trip_statistics(empty)
            assert stats.trip_count == 0
            assert stats.average_trips_per_vessel == 0.0
            assert "0" in stats.format_table()


class TestOdMatrix:
    def test_cells(self, mod):
        matrix = compute_od_matrix(mod)
        assert matrix.trip_count("alpha", "beta") == 2
        assert matrix.trip_count("beta", "alpha") == 1
        assert matrix.trip_count("beta", "gamma") == 0

    def test_busiest(self, mod):
        busiest = compute_od_matrix(mod).busiest(1)
        assert busiest[0][0] == ("alpha", "beta")
        assert busiest[0][1] == 2

    def test_cell_aggregates(self, mod):
        matrix = compute_od_matrix(mod)
        cell = matrix.cells[("alpha", "beta")]
        assert cell["average_travel_time_seconds"] == pytest.approx(2000.0)
        assert cell["average_distance_meters"] > 0


class TestVesselSummary:
    def test_summary(self, mod):
        summary = vessel_travel_summary(mod, 1)
        assert summary["trips"] == 2
        assert summary["total_distance_meters"] > 0
        assert summary["total_travel_time_seconds"] == 4000
        assert summary["ports_visited"] == ["alpha", "beta"]

    def test_unknown_vessel(self, mod):
        summary = vessel_travel_summary(mod, 404)
        assert summary["trips"] == 0
        assert summary["ports_visited"] == []
