"""Tests for the Moving Objects Database."""

import pytest

from repro.geo.polygon import GeoPolygon
from repro.mod.database import MovingObjectDatabase
from repro.simulator.vessel import VesselSpec, VesselType
from repro.simulator.world import Port
from repro.tracking.types import CriticalPoint, MovementEventType

PORT_A = Port("alpha", 23.0, 38.0, GeoPolygon.rectangle("pa", 23.0, 38.0, 3000, 3000))
PORT_B = Port("beta", 24.0, 38.0, GeoPolygon.rectangle("pb", 24.0, 38.0, 3000, 3000))


def stop_at(port, timestamp, mmsi=1):
    return CriticalPoint(
        mmsi=mmsi,
        lon=port.lon,
        lat=port.lat,
        timestamp=timestamp,
        annotations=frozenset({MovementEventType.STOP_END}),
        duration_seconds=600,
    )


def waypoint(lon, timestamp, mmsi=1):
    return CriticalPoint(
        mmsi=mmsi,
        lon=lon,
        lat=38.0,
        timestamp=timestamp,
        annotations=frozenset(
            {MovementEventType.TURN, MovementEventType.SPEED_CHANGE}
        ),
        speed_mps=5.0,
    )


VOYAGE = [
    stop_at(PORT_A, 0),
    waypoint(23.3, 1000),
    waypoint(23.6, 2000),
    stop_at(PORT_B, 3000),
]


@pytest.fixture()
def mod():
    with MovingObjectDatabase([PORT_A, PORT_B]) as database:
        yield database


class TestVessels:
    def test_load_and_read(self, mod):
        specs = [
            VesselSpec(1, VesselType.FERRY, 5.0, False),
            VesselSpec(2, VesselType.FISHING, 3.0, True),
        ]
        assert mod.load_vessels(specs) == 2
        row = mod.vessel(2)
        assert row == (2, "fishing", 3.0, 1)
        assert mod.vessel(404) is None

    def test_replace_on_conflict(self, mod):
        mod.load_vessels([VesselSpec(1, VesselType.FERRY, 5.0, False)])
        mod.load_vessels([VesselSpec(1, VesselType.TANKER, 9.0, False)])
        assert mod.vessel(1)[1] == "tanker"


class TestStaging:
    def test_stage_and_count(self, mod):
        assert mod.stage_points(VOYAGE) == 4
        assert mod.staged_count() == 4

    def test_staged_points_round_trip(self, mod):
        mod.stage_points(VOYAGE)
        points = mod.staged_points(1)
        assert [p.timestamp for p in points] == [0, 1000, 2000, 3000]
        # Annotations survive the encode/decode cycle.
        assert points[1].annotations == frozenset(
            {MovementEventType.TURN, MovementEventType.SPEED_CHANGE}
        )
        assert points[0].duration_seconds == 600


class TestReconstruction:
    def test_voyage_becomes_trip(self, mod):
        mod.stage_points(VOYAGE)
        assert mod.reconstruct() == 1
        assert mod.trip_count() == 1
        trip = mod.all_trips()[0]
        assert trip["origin_port"] == "alpha"
        assert trip["destination_port"] == "beta"
        assert trip["point_count"] == 4

    def test_assigned_points_leave_staging(self, mod):
        mod.stage_points(VOYAGE)
        mod.reconstruct()
        # The trip-closing stop stays staged as the next voyage's origin.
        assert mod.staged_count() <= 1

    def test_open_ended_residue_stays(self, mod):
        mod.stage_points(VOYAGE[:3])  # no destination port yet
        assert mod.reconstruct() == 0
        assert mod.staged_count() == 3

    def test_incremental_reconstruction(self, mod):
        mod.stage_points(VOYAGE[:3])
        mod.reconstruct()
        mod.stage_points(VOYAGE[3:])
        assert mod.reconstruct() == 1
        assert mod.trip_count() == 1

    def test_trip_points_geometry(self, mod):
        mod.stage_points(VOYAGE)
        mod.reconstruct()
        trip = mod.all_trips()[0]
        points = mod.trip_points(trip["trip_id"])
        assert [p.timestamp for p in points] == [0, 1000, 2000, 3000]
        assert points[0].mmsi == 1

    def test_timings_instrumentation(self, mod):
        mod.stage_points(VOYAGE)
        timings = {}
        mod.reconstruct(timings)
        assert timings["reconstruction"] >= 0.0
        assert timings["loading"] >= 0.0

    def test_multiple_vessels(self, mod):
        voyage_2 = [
            stop_at(PORT_B, 0, mmsi=2),
            waypoint(23.5, 1000, mmsi=2),
            stop_at(PORT_A, 2000, mmsi=2),
        ]
        mod.stage_points(VOYAGE + voyage_2)
        assert mod.reconstruct() == 2
        assert len(mod.trips_of_vessel(1)) == 1
        assert len(mod.trips_of_vessel(2)) == 1
        assert mod.trips_of_vessel(2)[0]["destination_port"] == "alpha"
