"""Tests for vessel behaviour programs."""

import random

import pytest

from repro.geo.haversine import haversine_meters
from repro.simulator.vessel import (
    VesselType,
    make_cargo,
    make_deviant_tanker,
    make_ferry,
    make_fishing,
    make_loiterer,
    make_shallow_runner,
)
from repro.simulator.world import AreaKind

DURATION = 6 * 3600


def rng():
    return random.Random(11)


class TestFerry:
    def test_covers_duration(self, world):
        behaviour = make_ferry(1, world, rng(), 0, DURATION)
        assert behaviour.plan.end_time >= DURATION
        assert behaviour.spec.vessel_type is VesselType.FERRY
        assert not behaviour.spec.is_fishing

    def test_visits_two_ports(self, world):
        behaviour = make_ferry(1, world, rng(), 0, DURATION)
        plan = behaviour.plan
        visited = set()
        for timestamp in range(0, plan.end_time, 300):
            lon, lat = plan.position_at(timestamp)
            for port in world.ports:
                if port.polygon.contains(lon, lat):
                    visited.add(port.name)
        assert len(visited) >= 2


class TestCargo:
    def test_long_straight_crossing(self, world):
        behaviour = make_cargo(2, world, rng(), 0, DURATION)
        plan = behaviour.plan
        start = plan.position_at(plan.start_time)
        end = plan.position_at(plan.end_time)
        assert haversine_meters(start[0], start[1], end[0], end[1]) > 50_000


class TestDeviantTanker:
    def test_silence_window_present(self, world):
        behaviour = make_deviant_tanker(3, world, rng(), 0, DURATION)
        assert len(behaviour.silence_windows) == 1
        start, end = behaviour.silence_windows[0]
        assert end > start

    def test_route_crosses_protected_area(self, world):
        protected = world.areas_of_kind(AreaKind.PROTECTED)[2]
        behaviour = make_deviant_tanker(
            3, world, rng(), 0, DURATION, protected=protected
        )
        plan = behaviour.plan
        inside = any(
            protected.polygon.is_close(*plan.position_at(t), 3000.0)
            for t in range(0, plan.end_time, 120)
        )
        assert inside

    def test_silence_covers_area_crossing(self, world):
        protected = world.areas_of_kind(AreaKind.PROTECTED)[0]
        behaviour = make_deviant_tanker(
            3, world, rng(), 0, DURATION, protected=protected
        )
        start, end = behaviour.silence_windows[0]
        # Somewhere during the silence the vessel is close to the area.
        close = any(
            protected.polygon.is_close(*behaviour.plan.position_at(t), 5000.0)
            for t in range(start, min(end, behaviour.plan.end_time), 60)
        )
        assert close

    def test_requires_protected_areas(self, world):
        from repro.simulator.world import WorldModel

        empty = WorldModel(world.bbox, ports=world.ports, areas=[])
        with pytest.raises(ValueError, match="no protected areas"):
            make_deviant_tanker(3, empty, rng(), 0, DURATION)


class TestFishing:
    def test_fishing_spec(self, world):
        behaviour = make_fishing(4, world, rng(), 0, DURATION)
        assert behaviour.spec.is_fishing
        assert behaviour.spec.vessel_type is VesselType.FISHING

    def test_illegal_fisher_reaches_forbidden_ground(self, world):
        ground = world.areas_of_kind(AreaKind.FORBIDDEN_FISHING)[1]
        behaviour = make_fishing(
            4, world, rng(), 0, DURATION, illegal=True, ground=ground
        )
        plan = behaviour.plan
        inside = any(
            ground.polygon.is_close(*plan.position_at(t), 3000.0)
            for t in range(0, min(plan.end_time, DURATION), 120)
        )
        assert inside

    def test_legal_fisher_avoids_areas(self, world):
        behaviour = make_fishing(4, world, rng(), 0, DURATION, illegal=False)
        plan = behaviour.plan
        # The chosen open-sea ground is away from every regulated area; the
        # transit may pass near some, so only check the loiter phase (low
        # speed far from port).
        for timestamp in range(0, min(plan.end_time, DURATION), 300):
            lon, lat = plan.position_at(timestamp)
            speed = plan.speed_at(timestamp)
            near_port = any(
                port.polygon.is_close(lon, lat, 3000.0) for port in world.ports
            )
            if speed > 0 and speed < 2.5 and not near_port:
                assert all(
                    not area.polygon.contains(lon, lat) for area in world.areas
                )


class TestLoiterer:
    def test_stops_at_rendezvous(self, world):
        rendezvous = (24.5, 37.5)
        behaviour = make_loiterer(
            5, world, rng(), 0, DURATION,
            rendezvous=rendezvous, arrive_by=DURATION // 3,
            stay_seconds=DURATION // 3,
        )
        plan = behaviour.plan
        # During the stay the vessel is within ~500 m of the rendezvous.
        probe = DURATION // 2
        lon, lat = plan.position_at(probe)
        assert haversine_meters(rendezvous[0], rendezvous[1], lon, lat) < 1000.0


class TestShallowRunner:
    def test_draft_exceeds_area_depth(self, world):
        shallow = world.areas_of_kind(AreaKind.SHALLOW)[0]
        behaviour = make_shallow_runner(
            6, world, rng(), 0, DURATION, shallow=shallow
        )
        assert behaviour.spec.draft_meters > shallow.depth_meters

    def test_creeps_through_area(self, world):
        shallow = world.areas_of_kind(AreaKind.SHALLOW)[0]
        behaviour = make_shallow_runner(
            6, world, rng(), 0, DURATION, shallow=shallow
        )
        plan = behaviour.plan
        slow_inside = False
        for timestamp in range(0, min(plan.end_time, DURATION), 60):
            lon, lat = plan.position_at(timestamp)
            if shallow.polygon.is_close(lon, lat, 2000.0):
                if 0 < plan.speed_at(timestamp) < 2.1:
                    slow_inside = True
        assert slow_inside
