"""Tests for the measurement-noise model."""

import random

from repro.geo.haversine import haversine_meters
from repro.simulator.noise import NO_NOISE, NoiseModel


class TestNoiseModel:
    def test_no_noise_is_identity(self):
        rng = random.Random(1)
        lon, lat, outlier = NO_NOISE.perturb(rng, 24.0, 38.0)
        assert (lon, lat) == (24.0, 38.0)
        assert not outlier

    def test_gps_jitter_is_small(self):
        model = NoiseModel(gps_sigma_meters=8.0, outlier_probability=0.0)
        rng = random.Random(2)
        displacements = []
        for _ in range(500):
            lon, lat, outlier = model.perturb(rng, 24.0, 38.0)
            assert not outlier
            displacements.append(haversine_meters(24.0, 38.0, lon, lat))
        # |N(0, 8)| stays below ~5 sigma.
        assert max(displacements) < 60.0
        assert sum(displacements) / len(displacements) < 20.0

    def test_outliers_are_large_and_flagged(self):
        model = NoiseModel(
            gps_sigma_meters=0.0,
            outlier_probability=1.0,
            outlier_min_meters=500.0,
            outlier_max_meters=1000.0,
        )
        rng = random.Random(3)
        for _ in range(50):
            lon, lat, outlier = model.perturb(rng, 24.0, 38.0)
            assert outlier
            displacement = haversine_meters(24.0, 38.0, lon, lat)
            assert 499.0 <= displacement <= 1001.0

    def test_outlier_rate_approximates_probability(self):
        model = NoiseModel(outlier_probability=0.1)
        rng = random.Random(4)
        flagged = sum(
            1 for _ in range(2000) if model.perturb(rng, 24.0, 38.0)[2]
        )
        assert 120 < flagged < 280  # ~200 expected
