"""Tests for motion plans and the plan builder."""

import random

import pytest

from repro.geo.haversine import haversine_meters
from repro.geo.units import knots_to_mps
from repro.simulator.motion import Leg, MotionPlan, PlanBuilder


class TestLeg:
    def test_hold_detection(self):
        hold = Leg(0, 100, 24.0, 38.0, 24.0, 38.0)
        move = Leg(0, 100, 24.0, 38.0, 24.1, 38.0)
        assert hold.is_hold
        assert not move.is_hold

    def test_interpolation_inside(self):
        leg = Leg(0, 100, 24.0, 38.0, 25.0, 38.0)
        lon, lat = leg.position_at(50)
        assert lon == pytest.approx(24.5)

    def test_clamping(self):
        leg = Leg(10, 20, 24.0, 38.0, 25.0, 38.0)
        assert leg.position_at(0) == (24.0, 38.0)
        assert leg.position_at(99) == (25.0, 38.0)


class TestMotionPlan:
    def test_requires_legs(self):
        with pytest.raises(ValueError, match="at least one leg"):
            MotionPlan([])

    def test_requires_contiguity(self):
        legs = [
            Leg(0, 100, 24.0, 38.0, 24.1, 38.0),
            Leg(150, 200, 24.1, 38.0, 24.2, 38.0),
        ]
        with pytest.raises(ValueError, match="contiguous"):
            MotionPlan(legs)

    def test_position_lookup_across_legs(self):
        legs = [
            Leg(0, 100, 24.0, 38.0, 24.1, 38.0),
            Leg(100, 200, 24.1, 38.0, 24.1, 38.1),
        ]
        plan = MotionPlan(legs)
        assert plan.position_at(50)[0] == pytest.approx(24.05)
        assert plan.position_at(150)[1] == pytest.approx(38.05)

    def test_speed_at(self):
        legs = [Leg(0, 1000, 24.0, 38.0, 24.1, 38.0)]
        plan = MotionPlan(legs)
        expected = haversine_meters(24.0, 38.0, 24.1, 38.0) / 1000
        assert plan.speed_at(500) == pytest.approx(expected)

    def test_speed_zero_on_hold(self):
        plan = MotionPlan([Leg(0, 100, 24.0, 38.0, 24.0, 38.0)])
        assert plan.speed_at(50) == 0.0


class TestPlanBuilder:
    def test_hold_then_sail(self):
        plan = (
            PlanBuilder(0, 24.0, 38.0)
            .hold(600)
            .sail_to(24.2, 38.0, 12.0)
            .build()
        )
        assert plan.start_time == 0
        assert plan.position_at(300) == (24.0, 38.0)
        end_lon, end_lat = plan.position_at(plan.end_time)
        assert (end_lon, end_lat) == pytest.approx((24.2, 38.0))

    def test_sail_duration_matches_speed(self):
        builder = PlanBuilder(0, 24.0, 38.0)
        distance = haversine_meters(24.0, 38.0, 24.2, 38.0)
        builder.sail_to(24.2, 38.0, 10.0)
        expected = distance / knots_to_mps(10.0)
        assert builder.time == pytest.approx(expected, rel=0.01)

    def test_invalid_hold(self):
        with pytest.raises(ValueError, match="hold duration"):
            PlanBuilder(0, 24.0, 38.0).hold(0)

    def test_invalid_speed(self):
        with pytest.raises(ValueError, match="speed must be positive"):
            PlanBuilder(0, 24.0, 38.0).sail_to(25.0, 38.0, 0.0)

    def test_sail_heading(self):
        builder = PlanBuilder(0, 24.0, 38.0).sail_heading(90.0, 10_000.0, 10.0)
        plan = builder.build()
        end = plan.position_at(plan.end_time)
        assert haversine_meters(24.0, 38.0, end[0], end[1]) == pytest.approx(
            10_000.0, rel=0.01
        )

    def test_loiter_stays_within_radius(self):
        rng = random.Random(4)
        builder = PlanBuilder(0, 24.0, 38.0).loiter(
            duration_seconds=7200,
            speed_knots=3.0,
            wander_radius_meters=2000.0,
            rng=rng,
        )
        plan = builder.build()
        for timestamp in range(0, plan.end_time, 300):
            lon, lat = plan.position_at(timestamp)
            # Wander bound plus one leg of slack (steer-back is reactive).
            assert haversine_meters(24.0, 38.0, lon, lat) < 4000.0

    def test_loiter_speed_is_slow(self):
        rng = random.Random(4)
        plan = (
            PlanBuilder(0, 24.0, 38.0)
            .loiter(3600, 3.0, 2000.0, rng=rng)
            .build()
        )
        speeds = [plan.speed_at(t) for t in range(60, plan.end_time, 300)]
        assert max(speeds) < knots_to_mps(5.0)
