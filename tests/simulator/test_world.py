"""Tests for the synthetic world model."""

import pytest

from repro.simulator.world import (
    AEGEAN_BBOX,
    AreaKind,
    build_aegean_world,
)


class TestBuildWorld:
    def test_default_sizes(self, world):
        assert len(world.ports) == 10
        assert len(world.areas) == 35

    def test_deterministic(self):
        first = build_aegean_world(seed=7)
        second = build_aegean_world(seed=7)
        assert [a.name for a in first.areas] == [a.name for a in second.areas]
        assert [
            a.polygon.centroid for a in first.areas
        ] == [a.polygon.centroid for a in second.areas]

    def test_all_kinds_represented(self, world):
        for kind in AreaKind:
            assert len(world.areas_of_kind(kind)) >= 10

    def test_areas_inside_bbox(self, world):
        for area in world.areas:
            lon, lat = area.polygon.centroid
            assert AEGEAN_BBOX.contains(lon, lat)

    def test_shallow_areas_have_depth(self, world):
        for area in world.areas_of_kind(AreaKind.SHALLOW):
            assert area.depth_meters > 0
        for area in world.areas_of_kind(AreaKind.PROTECTED):
            assert area.depth_meters == 0

    def test_areas_away_from_ports(self, world):
        for area in world.areas:
            lon, lat = area.polygon.centroid
            for port in world.ports:
                assert abs(port.lon - lon) > 0.1 or abs(port.lat - lat) > 0.1

    def test_port_lookup(self, world):
        port = world.port_by_name("piraeus")
        assert port.polygon.contains(port.lon, port.lat)
        with pytest.raises(KeyError):
            world.port_by_name("atlantis")

    def test_area_lookup(self, world):
        area = world.areas[0]
        assert world.area_by_name(area.name) is area
        with pytest.raises(KeyError):
            world.area_by_name("nowhere")

    def test_custom_sizes(self):
        small = build_aegean_world(num_ports=4, num_areas=9, seed=1)
        assert len(small.ports) == 4
        assert len(small.areas) == 9


class TestSplitByLongitude:
    def test_split_partitions_areas(self, world):
        west, east = world.split_by_longitude()
        assert len(west.areas) + len(east.areas) == len(world.areas)
        assert west.bbox.max_lon == east.bbox.min_lon
