"""Tests for fleet assembly and stream generation."""

import pytest

from repro.simulator import FleetSimulator, NoiseModel, replicate_positions
from repro.simulator.noise import NO_NOISE
from repro.simulator.vessel import VesselType


class TestMixedFleet:
    def test_fleet_size(self, world):
        simulator = FleetSimulator(world, seed=3, duration_seconds=2 * 3600)
        fleet = simulator.build_mixed_fleet(20)
        assert len(fleet) == 20

    def test_unique_mmsis(self, world):
        simulator = FleetSimulator(world, seed=3, duration_seconds=2 * 3600)
        fleet = simulator.build_mixed_fleet(20)
        mmsis = [vessel.mmsi for vessel in fleet]
        assert len(set(mmsis)) == len(mmsis)

    def test_deterministic_for_seed(self, world):
        def build():
            simulator = FleetSimulator(world, seed=5, duration_seconds=3600)
            fleet = simulator.build_mixed_fleet(10)
            return simulator.positions(fleet)

        assert build() == build()

    def test_type_mix(self, world):
        simulator = FleetSimulator(world, seed=3, duration_seconds=2 * 3600)
        fleet = simulator.build_mixed_fleet(40)
        types = {vessel.spec.vessel_type for vessel in fleet}
        assert VesselType.FERRY in types
        assert VesselType.CARGO in types
        assert VesselType.FISHING in types

    def test_stream_timestamp_ordered(self, small_fleet):
        stream = small_fleet["stream"]
        assert all(
            a.timestamp <= b.timestamp for a, b in zip(stream, stream[1:])
        )

    def test_per_vessel_strictly_increasing(self, small_fleet):
        from collections import defaultdict

        latest = defaultdict(lambda: -1)
        for position in small_fleet["stream"]:
            assert position.timestamp > latest[position.mmsi]
            latest[position.mmsi] = position.timestamp

    def test_report_rate_realistic(self, small_fleet):
        # Mean per-vessel report interval should be tens of seconds to a few
        # minutes, as in the paper's dataset (~2 min).
        stream = small_fleet["stream"]
        fleet = small_fleet["fleet"]
        span = stream[-1].timestamp - stream[0].timestamp
        mean_interval = span * len(fleet) / len(stream)
        assert 20.0 < mean_interval < 300.0

    def test_ground_truth_accessible(self, small_fleet):
        vessel = small_fleet["fleet"][0]
        lon, lat = vessel.ground_truth_at(1800)
        assert isinstance(lon, float)
        assert isinstance(lat, float)


class TestScenarioFleets:
    def test_suspicious_scenario_vessels_converge(self, world):
        simulator = FleetSimulator(world, seed=4, duration_seconds=6 * 3600)
        fleet = simulator.build_scenario_suspicious(5)
        assert len(fleet) == 5
        # Mid-simulation all vessels sit near the same rendezvous.
        probe = 3 * 3600
        points = [v.ground_truth_at(probe) for v in fleet]
        lons = [p[0] for p in points]
        lats = [p[1] for p in points]
        assert max(lons) - min(lons) < 0.05
        assert max(lats) - min(lats) < 0.05

    def test_illegal_shipping_scenario_has_silence(self, world):
        simulator = FleetSimulator(world, seed=4, duration_seconds=4 * 3600)
        fleet = simulator.build_scenario_illegal_shipping(2)
        for vessel in fleet:
            assert vessel.behaviour.silence_windows
            start, end = vessel.behaviour.silence_windows[0]
            reported = [
                p.timestamp
                for p in vessel.positions
                if start <= p.timestamp < end
            ]
            assert reported == []

    def test_dangerous_shipping_scenario_draft(self, world):
        simulator = FleetSimulator(world, seed=4, duration_seconds=4 * 3600)
        fleet = simulator.build_scenario_dangerous_shipping(2)
        assert all(vessel.spec.draft_meters > 4.0 for vessel in fleet)


class TestNoiseIntegration:
    def test_noise_free_matches_ground_truth(self, world):
        simulator = FleetSimulator(
            world, seed=8, duration_seconds=3600, noise=NO_NOISE
        )
        fleet = simulator.build_mixed_fleet(3)
        for vessel in fleet:
            for position in vessel.positions[:20]:
                truth = vessel.ground_truth_at(position.timestamp)
                assert position.lon == pytest.approx(truth[0], abs=1e-9)
                assert position.lat == pytest.approx(truth[1], abs=1e-9)

    def test_noisy_positions_deviate(self, world):
        simulator = FleetSimulator(
            world, seed=8, duration_seconds=3600,
            noise=NoiseModel(gps_sigma_meters=10.0, outlier_probability=0.0),
        )
        fleet = simulator.build_mixed_fleet(3)
        vessel = fleet[0]
        deviations = [
            abs(p.lon - vessel.ground_truth_at(p.timestamp)[0])
            + abs(p.lat - vessel.ground_truth_at(p.timestamp)[1])
            for p in vessel.positions[:50]
        ]
        assert any(d > 0 for d in deviations)


class TestReplicatePositions:
    def test_single_copy_is_identity(self, small_fleet):
        stream = small_fleet["stream"]
        assert replicate_positions(stream, 1) == stream

    def test_copies_multiply_volume(self, small_fleet):
        stream = small_fleet["stream"]
        replicated = replicate_positions(stream, 3)
        assert len(replicated) == 3 * len(stream)
        assert len({p.mmsi for p in replicated}) == 3 * len(
            {p.mmsi for p in stream}
        )

    def test_invalid_copies(self, small_fleet):
        with pytest.raises(ValueError, match="copies"):
            replicate_positions(small_fleet["stream"], 0)

    def test_replicas_preserve_order(self, small_fleet):
        replicated = replicate_positions(small_fleet["stream"], 2)
        assert all(
            a.timestamp <= b.timestamp
            for a, b in zip(replicated, replicated[1:])
        )
