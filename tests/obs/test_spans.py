"""Tests for hierarchical timing spans and the global registry helpers."""

import pytest

from repro import obs
from repro.obs import MetricsRegistry
from repro.obs.spans import NULL_SPAN


class TestSpanTiming:
    def test_records_duration(self):
        registry = MetricsRegistry()
        with registry.span("work") as span:
            pass
        assert span.seconds >= 0.0
        histogram = registry.span_histogram("work")
        assert histogram is not None
        assert histogram.count == 1

    def test_repeated_spans_accumulate(self):
        registry = MetricsRegistry()
        for _ in range(3):
            with registry.span("loop"):
                pass
        assert registry.span_histogram("loop").count == 3


class TestSpanNesting:
    def test_child_path_prefixed_by_parent(self):
        registry = MetricsRegistry()
        with registry.span("outer") as outer:
            with registry.span("inner") as inner:
                assert inner.parent is outer
                assert registry.current_span() is inner
            assert registry.current_span() is outer
        assert registry.current_span() is None
        assert outer.path == "outer"
        assert inner.path == "outer/inner"
        assert registry.span_paths() == ["outer", "outer/inner"]

    def test_three_levels(self):
        registry = MetricsRegistry()
        with registry.span("a"), registry.span("b"), registry.span("c") as c:
            pass
        assert c.path == "a/b/c"

    def test_siblings_share_parent_path(self):
        registry = MetricsRegistry()
        with registry.span("parent"):
            with registry.span("child"):
                pass
            with registry.span("child"):
                pass
        assert registry.span_histogram("parent/child").count == 2

    def test_exception_still_pops_and_records(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError), registry.span("fails"):
            raise RuntimeError("boom")
        assert registry.current_span() is None
        assert registry.span_histogram("fails").count == 1


class TestDisabledSpans:
    def test_disabled_registry_hands_out_null_span(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.span("anything") is NULL_SPAN

    def test_null_span_records_nothing(self):
        registry = MetricsRegistry(enabled=False)
        with registry.span("hot.path"):
            pass
        assert registry.span_paths() == []

    def test_always_span_times_without_recording(self):
        # Pipeline phases must tick even when metrics are off: their
        # seconds feed PhaseTimings/SlideReport unconditionally.
        registry = MetricsRegistry(enabled=False)
        with registry.span("phase", always=True) as span:
            sum(range(1000))
        assert span is not NULL_SPAN
        assert span.seconds > 0.0
        assert registry.span_paths() == []


class TestGlobalHelpers:
    def test_global_registry_disabled_by_default(self):
        assert not obs.is_enabled()
        assert obs.span("x") is NULL_SPAN

    def test_activate_scopes_a_registry(self):
        scoped = MetricsRegistry()
        before = obs.get_registry()
        with obs.activate(scoped) as registry:
            assert registry is scoped
            assert obs.get_registry() is scoped
            obs.count("events", 2)
            with obs.span("outer"), obs.span("inner"):
                pass
        assert obs.get_registry() is before
        assert scoped.counter("events").value == 2.0
        assert scoped.span_paths() == ["outer", "outer/inner"]

    def test_activate_restores_on_error(self):
        before = obs.get_registry()
        with pytest.raises(ValueError), obs.activate(MetricsRegistry()):
            raise ValueError("boom")
        assert obs.get_registry() is before

    def test_enable_disable_roundtrip(self):
        assert not obs.is_enabled()
        try:
            obs.enable()
            assert obs.is_enabled()
        finally:
            obs.disable()
        assert not obs.is_enabled()

    def test_timed_span_measures_when_disabled(self):
        assert not obs.is_enabled()
        with obs.timed_span("phase") as span:
            sum(range(1000))
        assert span.seconds > 0.0
