"""Tests for the metrics registry instruments."""

import pytest

from repro.obs import MetricsRegistry
from repro.obs.registry import Histogram


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("events")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5.0

    def test_same_name_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)


class TestGauge:
    def test_keeps_last_write(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("ratio")
        gauge.set(0.5)
        gauge.set(0.94)
        assert gauge.value == 0.94


class TestHistogramQuantiles:
    def test_exact_quantiles_under_capacity(self):
        histogram = Histogram("latency")
        for value in range(1, 101):  # 1..100
            histogram.observe(float(value))
        assert histogram.count == 100
        assert histogram.min == 1.0
        assert histogram.max == 100.0
        assert histogram.mean == pytest.approx(50.5)
        assert histogram.quantile(0.50) == pytest.approx(50.5)
        assert histogram.quantile(0.95) == pytest.approx(95.05)
        assert histogram.quantile(0.99) == pytest.approx(99.01)
        assert histogram.quantile(0.0) == 1.0
        assert histogram.quantile(1.0) == 100.0

    def test_empty_histogram(self):
        histogram = Histogram("empty")
        assert histogram.quantile(0.5) == 0.0
        assert histogram.mean == 0.0
        summary = histogram.summary()
        assert summary["count"] == 0
        assert summary["p95"] == 0.0

    def test_quantile_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram("x").quantile(1.5)

    def test_decimation_keeps_exact_aggregates(self):
        histogram = Histogram("big", capacity=64)
        n = 10_000
        for value in range(n):
            histogram.observe(float(value))
        assert histogram.count == n
        assert histogram.total == pytest.approx(n * (n - 1) / 2)
        assert histogram.min == 0.0
        assert histogram.max == float(n - 1)
        # Reservoir stays bounded and quantiles stay representative.
        assert len(histogram._samples) < 2 * 64
        assert histogram.quantile(0.5) == pytest.approx(n / 2, rel=0.1)

    def test_decimation_is_deterministic(self):
        def build():
            histogram = Histogram("d", capacity=32)
            for value in range(1000):
                histogram.observe(float(value % 97))
            return histogram.summary()

        assert build() == build()

    def test_summary_quantile_labels(self):
        histogram = Histogram("s")
        histogram.observe(1.0)
        summary = histogram.summary()
        assert {"count", "total", "mean", "min", "max", "p50", "p95", "p99"} \
            <= set(summary)


class TestDisabledRegistry:
    def test_helpers_are_noops(self):
        registry = MetricsRegistry(enabled=False)
        registry.inc("c", 5)
        registry.set_gauge("g", 1.0)
        registry.observe("h", 0.25)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["gauges"] == {}
        assert snapshot["histograms"] == {}

    def test_direct_instruments_still_work(self):
        # Tests may poke instruments explicitly even when recording is off.
        registry = MetricsRegistry(enabled=False)
        registry.counter("c").inc()
        assert registry.counter("c").value == 1.0


class TestSnapshot:
    def test_sections_and_sorting(self):
        registry = MetricsRegistry()
        registry.inc("b.counter")
        registry.inc("a.counter", 2)
        registry.set_gauge("ratio", 0.9)
        registry.observe("lat", 0.5)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a.counter", "b.counter"]
        assert snapshot["counters"]["a.counter"] == 2.0
        assert snapshot["gauges"]["ratio"] == 0.9
        assert snapshot["histograms"]["lat"]["count"] == 1

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.inc("c")
        with registry.span("s"):
            pass
        registry.reset()
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["spans"] == {}
