"""Tests for the Prometheus text-format export of the registry."""

import re

from repro.obs import MetricsRegistry, render_prometheus

#: Prometheus text format 0.0.4: `name{labels} value` or `# TYPE|HELP ...`.
SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"
    r" (?P<value>[-+]?(\d+(\.\d+)?([eE][-+]?\d+)?|Inf|NaN))$"
)
TYPE_LINE = re.compile(
    r"^# TYPE (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*) "
    r"(?P<type>counter|gauge|summary|histogram|untyped)$"
)


def parse_exposition(text: str) -> dict[str, dict]:
    """Validate the whole exposition; returns {family: {type, samples}}.

    Raises AssertionError on any line that is not a valid comment or
    sample, on samples preceding their TYPE line, or on duplicate TYPE
    declarations — the rules Prometheus' own parser enforces.
    """
    assert text.endswith("\n"), "exposition must end with a newline"
    families: dict[str, dict] = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            match = TYPE_LINE.match(line)
            assert match, f"malformed comment line: {line!r}"
            name = match.group("name")
            assert name not in families, f"duplicate TYPE for {name}"
            families[name] = {"type": match.group("type"), "samples": {}}
            continue
        match = SAMPLE_LINE.match(line)
        assert match, f"malformed sample line: {line!r}"
        sample = match.group("name")
        base = re.sub(r"_(sum|count|total|bucket)$", "", sample)
        family = sample if sample in families else base
        assert family in families, f"sample {sample} precedes its TYPE line"
        key = sample + (match.group("labels") or "")
        families[family]["samples"][key] = float(
            match.group("value").replace("Inf", "inf")
        )
    return families


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.inc("pipeline.raw_positions", 120)
    registry.inc("service.ingest.shed", 3)
    registry.set_gauge("pipeline.compression_ratio", 0.94)
    for value in (0.001, 0.002, 0.004, 0.2):
        registry.observe("service.ingest.latency_seconds", value)
    with registry.span("pipeline.slide"):
        pass
    return registry


class TestRenderPrometheus:
    def test_counters_get_total_suffix(self):
        families = parse_exposition(render_prometheus(populated_registry()))
        family = families["repro_pipeline_raw_positions_total"]
        assert family["type"] == "counter"
        assert family["samples"]["repro_pipeline_raw_positions_total"] == 120

    def test_gauges_render_verbatim(self):
        families = parse_exposition(render_prometheus(populated_registry()))
        family = families["repro_pipeline_compression_ratio"]
        assert family["type"] == "gauge"
        assert family["samples"]["repro_pipeline_compression_ratio"] == 0.94

    def test_histograms_render_as_summaries(self):
        families = parse_exposition(render_prometheus(populated_registry()))
        family = families["repro_service_ingest_latency_seconds"]
        assert family["type"] == "summary"
        samples = family["samples"]
        assert samples["repro_service_ingest_latency_seconds_count"] == 4
        assert samples["repro_service_ingest_latency_seconds_sum"] == (
            0.001 + 0.002 + 0.004 + 0.2
        )
        assert 'repro_service_ingest_latency_seconds{quantile="0.5"}' in samples
        assert 'repro_service_ingest_latency_seconds{quantile="0.99"}' in samples

    def test_spans_render_under_span_prefix(self):
        families = parse_exposition(render_prometheus(populated_registry()))
        family = families["repro_span_pipeline_slide"]
        assert family["type"] == "summary"
        assert family["samples"]["repro_span_pipeline_slide_count"] == 1

    def test_whole_exposition_is_valid(self):
        # Every line of a fully populated registry parses.
        text = render_prometheus(populated_registry())
        families = parse_exposition(text)
        assert len(families) == 5

    def test_empty_registry_renders_empty_exposition(self):
        text = render_prometheus(MetricsRegistry())
        assert text == "\n"

    def test_dots_and_invalid_chars_sanitized(self):
        registry = MetricsRegistry()
        registry.inc("weird-name.with/chars", 1)
        text = render_prometheus(registry)
        assert "repro_weird_name_with_chars_total 1" in text
        parse_exposition(text)

    def test_custom_prefix(self):
        registry = MetricsRegistry()
        registry.set_gauge("up", 1)
        assert "maritime_up 1" in render_prometheus(registry, prefix="maritime")
