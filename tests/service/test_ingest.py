"""Ingest queue shedding semantics and the TCP listener."""

import asyncio

import pytest

from repro import obs
from repro.service import IngestQueue, IngestServer


def run(coro):
    return asyncio.run(coro)


class TestIngestQueue:
    def test_fifo_under_capacity(self):
        async def scenario():
            queue = IngestQueue(capacity=4)
            queue.put(1, "a")
            queue.put(2, "b")
            first = await queue.get()
            second = await queue.get()
            return first[:2], second[:2]

        assert run(scenario()) == ((1, "a"), (2, "b"))

    def test_overflow_sheds_oldest_and_counts(self):
        async def scenario():
            with obs.activate(obs.MetricsRegistry()) as registry:
                queue = IngestQueue(capacity=3)
                for index in range(10):
                    queue.put(index, f"s{index}")
                kept = [(await queue.get())[1] for _ in range(len(queue))]
                return queue.shed_count, kept, registry.counter(
                    "service.ingest.shed"
                ).value

        shed, kept, counted = run(scenario())
        assert shed == 7
        assert kept == ["s7", "s8", "s9"]  # newest survive, oldest shed
        assert counted == 7

    def test_get_returns_none_after_close_and_drain(self):
        async def scenario():
            queue = IngestQueue(capacity=4)
            queue.put(1, "a")
            queue.close()
            first = await queue.get()
            sentinel = await queue.get()
            return first[1], sentinel

        assert run(scenario()) == ("a", None)

    def test_put_after_close_is_counted_not_silent(self):
        async def scenario():
            with obs.activate(obs.MetricsRegistry()) as registry:
                queue = IngestQueue(capacity=4)
                queue.close()
                queue.put(1, "late")
                return len(queue), registry.counter(
                    "service.ingest.dropped_after_close"
                ).value

        assert run(scenario()) == (0, 1)

    def test_get_waits_for_put(self):
        async def scenario():
            queue = IngestQueue(capacity=4)

            async def producer():
                await asyncio.sleep(0.01)
                queue.put(5, "later")

            task = asyncio.ensure_future(producer())
            item = await asyncio.wait_for(queue.get(), timeout=2)
            await task
            return item[:2]

        assert run(scenario()) == ((5, "later"))

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            IngestQueue(0)


class TestIngestServer:
    def test_many_clients_one_queue(self):
        async def scenario():
            queue = IngestQueue(capacity=100)
            server = IngestServer(queue, "127.0.0.1", 0, clock=lambda: 42)
            await server.start()
            try:
                async def client(lines):
                    _, writer = await asyncio.open_connection(
                        "127.0.0.1", server.port
                    )
                    for line in lines:
                        writer.write(line.encode() + b"\n")
                    await writer.drain()
                    writer.close()
                    await writer.wait_closed()

                await asyncio.gather(
                    client(["100\t!AIVDM,a", "# comment", ""]),
                    client(["!AIVDM,b"]),
                )
                while server.open_connections:
                    await asyncio.sleep(0.005)
                items = []
                while len(queue):
                    items.append((await queue.get())[:2])
                return sorted(items), len(server.connections)

            finally:
                await server.stop()

        items, connections = run(scenario())
        # Comments/blank lines never reach the queue; the bare sentence
        # was stamped with the injected clock.
        assert items == [(42, "!AIVDM,b"), (100, "!AIVDM,a")]
        assert connections == 2

    def test_unparseable_lines_are_counted_not_silent(self):
        async def scenario():
            with obs.activate(obs.MetricsRegistry()) as registry:
                queue = IngestQueue(capacity=10)
                server = IngestServer(queue, "127.0.0.1", 0, clock=lambda: 7)
                await server.start()
                try:
                    _, writer = await asyncio.open_connection(
                        "127.0.0.1", server.port
                    )
                    writer.write(b"# comment\n\n!AIVDM,ok\n")
                    await writer.drain()
                    writer.close()
                    await writer.wait_closed()
                    while server.open_connections:
                        await asyncio.sleep(0.005)
                    return (
                        registry.counter("service.ingest.ignored").value,
                        registry.counter("service.ingest.lines").value,
                        len(queue),
                    )
                finally:
                    await server.stop()

        ignored, accepted, queued = run(scenario())
        # The comment and the blank line are skipped by design — but the
        # skip is visible in the registry, not silent.
        assert ignored == 2
        assert accepted == 1
        assert queued == 1

    def test_per_connection_stats(self):
        async def scenario():
            queue = IngestQueue(capacity=10)
            server = IngestServer(queue, "127.0.0.1", 0)
            await server.start()
            try:
                _, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(b"1\t!AIVDM,x\n2\t!AIVDM,y\n")
                await writer.drain()
                writer.close()
                await writer.wait_closed()
                while server.open_connections:
                    await asyncio.sleep(0.005)
                return server.connections[0]
            finally:
                await server.stop()

        stats = run(scenario())
        assert stats.lines == 2
        assert stats.bytes == len(b"1\t!AIVDM,x\n2\t!AIVDM,y\n")
        assert stats.closed
