"""Crash, recover, and prove byte-identical parity — the chaos suite.

The durability contract (docs/RESILIENCE.md): a service killed mid-stream
with a write-ahead journal loses nothing it had consumed.  A restarted
supervisor replays the journal through a fresh pipeline and republishes
every slide byte-for-byte, then live ingest resumes the pending partial
slide — so the union of the recovered run's output equals the
uninterrupted offline replay of the full sentence stream, exactly.

The crash is an injected ``service.slide:crash`` fault
(:class:`SimulatedCrash` — the in-process stand-in for ``kill -9``; the
out-of-process SIGKILL drill lives in ``benchmarks/chaos_drill.py`` and
the chaos CI job).
"""

import asyncio
import threading
import time

import pytest

from repro.resilience import FaultPlan, SimulatedCrash, inject
from repro.resilience.wal import read_journal
from repro.service import ServiceConfig, ServiceSupervisor, offline_feed_lines

EPHEMERAL = {"ingest_port": 0, "feed_port": 0, "http_port": 0}


async def _poll(predicate, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "poll timed out"
        await asyncio.sleep(0.005)


def _tap_feed(supervisor):
    """Capture every published feed line, including recovery republish."""
    lines = []
    original = supervisor.feed.publish

    def tap(line):
        lines.append(line)
        return original(line)

    supervisor.feed.publish = tap
    return lines


async def _send_sentences(port, sentences):
    _, writer = await asyncio.open_connection("127.0.0.1", port)
    for receive_time, sentence in sentences:
        writer.write(f"{receive_time}\t{sentence}\n".encode("ascii"))
        if writer.transport.get_write_buffer_size() > 1 << 16:
            await writer.drain()
    await writer.drain()
    writer.close()
    await writer.wait_closed()


async def run_until_crash(sentences, world, specs, service, plan):
    """Feed the stream into a service armed with ``plan`` until the
    injected crash kills the batcher; abandon everything un-drained,
    exactly like a process death."""
    supervisor = ServiceSupervisor(world, specs, service=service)
    lines = _tap_feed(supervisor)
    with inject(plan) as injector:
        await supervisor.start()
        await _send_sentences(supervisor.ports()["ingest"], sentences)
        await _poll(lambda: supervisor._batcher_task.done())
        assert isinstance(
            supervisor._batcher_task.exception(), SimulatedCrash
        ), "the planned crash must be what killed the batcher"
        fired = injector.snapshot()["fired"]
    # Abandon: no drain, no finalize, no journal truncation — just release
    # OS resources the dead process would have dropped anyway.
    await supervisor.ingest.stop()
    await supervisor.feed.close()
    await supervisor.http.stop()
    supervisor.batcher.abort()
    if hasattr(supervisor.system, "close"):
        supervisor.system.close()
    supervisor.system.database.close()
    return supervisor, lines, fired


async def run_recovered(tail, world, specs, service):
    """Restart on the same WAL dir, replay, then feed the tail and drain."""
    supervisor = ServiceSupervisor(world, specs, service=service)
    lines = _tap_feed(supervisor)
    await supervisor.start()  # journal replay republishes in here
    await _send_sentences(supervisor.ports()["ingest"], tail)
    await _poll(lambda: supervisor.ingest.open_connections == 0)
    await supervisor.drain_and_stop()
    return supervisor, lines


class TestCrashRecoveryParity:
    @pytest.mark.parametrize("shards", [1, 2])
    def test_crash_restart_replay_is_byte_identical(
        self, tmp_path, world, small_fleet, soak_sentences, shards
    ):
        wal_dir = tmp_path / "wal"
        service = ServiceConfig(
            shards=shards,
            wal_dir=str(wal_dir),
            ingest_queue_size=len(soak_sentences) + 1,  # no shed: full WAL
            **EPHEMERAL,
        )
        plan = FaultPlan.from_spec("service.slide:crash@3")
        crashed, run1_lines, fired = asyncio.run(
            run_until_crash(
                soak_sentences, world, small_fleet["specs"], service, plan
            )
        )
        assert fired == ["service.slide:crash@3"]
        assert crashed.queue.shed_count == 0

        offline = offline_feed_lines(
            soak_sentences, world, small_fleet["specs"], shards=shards
        )
        # Everything published before the crash is a clean prefix of the
        # uninterrupted run — no corrupt or partial slide escaped.
        assert run1_lines == offline[: len(run1_lines)]
        assert 0 < len(run1_lines) < len(offline)

        # The journal holds exactly the consumed prefix of the stream.
        journaled, stats = read_journal(wal_dir)
        assert stats.corrupt_segments == 0
        assert journaled == soak_sentences[: len(journaled)]
        assert len(journaled) >= len(run1_lines)

        recovered, run2_lines = asyncio.run(
            run_recovered(
                soak_sentences[len(journaled):],
                world,
                small_fleet["specs"],
                service,
            )
        )
        assert recovered.recovered_records == len(journaled)
        # THE guarantee: recovery + resumed live ingest reproduces the
        # uninterrupted offline replay byte for byte, finalize included.
        assert run2_lines == offline
        # At-least-once republication covers the crashed run's output.
        assert run2_lines[: len(run1_lines)] == run1_lines
        # A clean drain discharges the journal entirely.
        assert read_journal(wal_dir)[0] == []

    def test_unjournaled_service_still_runs(self, world, small_fleet,
                                            soak_sentences):
        """No wal_dir: the paper's main-memory behaviour, no recovery."""
        service = ServiceConfig(**EPHEMERAL)
        supervisor = ServiceSupervisor(world, small_fleet["specs"],
                                       service=service)
        assert supervisor.journal is None
        assert supervisor.recovered_records == 0
        supervisor.system.database.close()


class TestWorkerKillChaos:
    def test_injected_worker_kill_recovers_with_parity(
        self, world, small_fleet, soak_sentences
    ):
        """A shard worker killed mid-run is restarted from checkpoint and
        the live feed still equals the offline replay byte for byte."""
        from tests.service.test_soak_parity import run_live

        service = ServiceConfig(shards=2, **EPHEMERAL)
        plan = FaultPlan.from_spec("runtime.worker:kill@3:1")
        with inject(plan) as injector:
            supervisor, live = asyncio.run(
                run_live(soak_sentences, world, small_fleet["specs"],
                         service=service)
            )
            assert injector.snapshot()["fired"] == ["runtime.worker:kill@3:1"]
        assert supervisor.system.restart_count() >= 1
        offline = offline_feed_lines(
            soak_sentences, world, small_fleet["specs"], shards=2
        )
        assert live == offline


class TestDrainDeadline:
    def test_wedged_slide_forces_abort_instead_of_hanging(
        self, world, small_fleet, soak_sentences
    ):
        """The satellite bugfix: drain used to await the batcher forever."""
        release = threading.Event()

        class WedgedSystem:
            def __init__(self, inner):
                self._inner = inner
                self.database = inner.database

            def process_slide(self, batch, query_time):
                release.wait(timeout=30.0)  # wedge until the test releases
                return self._inner.process_slide(batch, query_time)

            def finalize(self):
                return self._inner.finalize()

        from repro.pipeline.system import SurveillanceSystem

        service = ServiceConfig(drain_timeout_seconds=0.5, **EPHEMERAL)
        def factory(world, specs, config, svc):
            return WedgedSystem(SurveillanceSystem(world, specs, config))

        async def scenario():
            supervisor = ServiceSupervisor(
                world, small_fleet["specs"], service=service,
                system_factory=factory,
            )
            await supervisor.start()
            # Enough sentences to start (and wedge inside) slide one.
            await _send_sentences(
                supervisor.ports()["ingest"], soak_sentences[:2000]
            )
            await _poll(lambda: supervisor.ingest.open_connections == 0)
            started = time.monotonic()
            await supervisor.drain_and_stop()
            elapsed = time.monotonic() - started
            release.set()
            return supervisor, elapsed

        supervisor, elapsed = asyncio.run(scenario())
        assert supervisor.forced_abort, "deadline must force the abort"
        assert elapsed < 10.0, f"drain hung for {elapsed:.1f}s"
        assert supervisor.health()["forced_abort"] is True


class TestDeadLetterQuarantine:
    def test_malformed_sentences_are_quarantined_with_reasons(
        self, world, small_fleet, soak_sentences
    ):
        from tests.service.test_soak_parity import run_live

        polluted = list(soak_sentences[:300])
        polluted.insert(50, (polluted[50][0], "!AIVDM,1,1,,A,garbage,0*00"))
        polluted.insert(100, (polluted[100][0], "!AIVDM,notanumber*7F"))
        service = ServiceConfig(deadletter_capacity=16, **EPHEMERAL)
        supervisor, _ = asyncio.run(
            run_live(polluted, world, small_fleet["specs"], service=service)
        )
        assert supervisor.deadletter.total >= 2
        snapshot = supervisor.deadletter.snapshot(limit=10)
        assert sum(snapshot["by_reason"].values()) == snapshot["total"]
        quarantined = {entry["sentence"] for entry in snapshot["recent"]}
        assert "!AIVDM,1,1,,A,garbage,0*00" in quarantined
        # The debug endpoint serves the same view.
        status, payload, _ = supervisor.http._route("/deadletter?limit=5")
        assert status == 200
        assert payload["total"] == supervisor.deadletter.total
        assert len(payload["recent"]) <= 5

    def test_capacity_bounds_the_buffer(self, world, small_fleet):
        from repro.service.quarantine import DeadLetterBuffer

        buffer = DeadLetterBuffer(capacity=4)
        for i in range(10):
            buffer.quarantine(i, f"bad-{i}", "bad_checksum")
        assert len(buffer) == 4
        assert buffer.total == 10
        assert buffer.evicted == 6
        newest = buffer.recent(limit=2)
        assert newest[0]["sentence"] == "bad-9"
