"""Backpressure semantics through every transport adapter.

The shedding and eviction contracts are queue-level, but the queues sit
behind pluggable transports — so each contract is proven through each
registered adapter: the ingest queue sheds oldest-first no matter how
lines arrive, and a feed subscriber that stops reading is evicted no
matter what framing it subscribed with.
"""

import asyncio

import pytest

from repro import obs
from repro.service import FeedHub, IngestQueue, IngestServer
from repro.transport import available_transports, create_transport


@pytest.fixture(params=available_transports())
def transport(request):
    return create_transport(request.param)


async def _poll(predicate, timeout: float = 5.0) -> None:
    for _ in range(int(timeout / 0.005)):
        if predicate():
            return
        await asyncio.sleep(0.005)
    assert predicate(), "poll timed out"


class TestIngestSheddingThroughTransports:
    def test_oldest_lines_shed_whatever_the_wire(self, transport):
        async def run():
            with obs.activate(obs.MetricsRegistry()) as registry:
                queue = IngestQueue(capacity=4)
                server = IngestServer(
                    queue, "127.0.0.1", 0, clock=lambda: 0,
                    transport=transport,
                )
                await server.start()
                client = await transport.connect(
                    "127.0.0.1", server.port, "ingest"
                )
                for index in range(20):
                    await client.send(f"{index}\tS{index}")
                await client.close()
                await _poll(lambda: queue.put_count == 20)
                await server.stop()
                kept = []
                queue.close()
                while (item := await queue.get()) is not None:
                    kept.append(item[1])
                return queue.shed_count, kept, registry

        shed, kept, registry = asyncio.run(run())
        assert shed == 16
        assert kept == ["S16", "S17", "S18", "S19"]  # newest survive
        assert registry.counter("service.ingest.shed").value == 16
        assert registry.counter("service.ingest.lines").value == 20


class TestFeedEvictionThroughTransports:
    def test_stalled_subscriber_is_evicted_counted(self, transport):
        async def run():
            with obs.activate(obs.MetricsRegistry()) as registry:
                hub = FeedHub(
                    "127.0.0.1", 0, queue_size=4, transport=transport
                )
                await hub.start()
                stalled = await transport.connect(
                    "127.0.0.1", hub.port, "feed"
                )
                await _poll(lambda: hub.subscriber_count == 1)
                # Publish synchronously, more than the queue holds: the
                # writer task never gets the loop, so the bounded queue
                # must fill and the subscriber must be evicted.
                for index in range(6):
                    hub.publish(f"line-{index}")
                assert hub.evicted_count == 1
                await _poll(lambda: hub.subscriber_count == 0)
                # The evicted side sees its stream end, not hang.
                while await stalled.receive() is not None:
                    pass
                await stalled.close()
                await hub.close()
                return registry

        registry = asyncio.run(run())
        assert registry.counter("service.feed.evicted").value == 1
        assert registry.counter("service.feed.dropped_lines").value > 0

    def test_healthy_subscriber_survives_the_same_volume(self, transport):
        async def run():
            hub = FeedHub("127.0.0.1", 0, queue_size=4, transport=transport)
            await hub.start()
            healthy = await transport.connect("127.0.0.1", hub.port, "feed")
            received: list[str] = []

            async def consume():
                while (line := await healthy.receive()) is not None:
                    received.append(line)

            consumer = asyncio.ensure_future(consume())
            await _poll(lambda: hub.subscriber_count == 1)
            for index in range(50):
                hub.publish(f"line-{index}")
                # A reading consumer keeps draining between publishes.
                await asyncio.sleep(0.001)
            await _poll(lambda: len(received) == 50)
            await hub.close()
            await consumer
            await healthy.close()
            return hub.evicted_count, received

        evicted, received = asyncio.run(run())
        assert evicted == 0
        assert received == [f"line-{i}" for i in range(50)]
