"""Watermark-mode batching units: the cadence contract that makes a
gateway-cluster shard's slides byte-identical to a single node's.

The cluster parity test (tests/gateway/test_cluster.py) proves the end
result; these tests pin the individual rules — barrier advancement,
final-watermark exemption, batch partition and sort, the empty trailing
drain slide — so a regression names the broken rule, not just "bytes
differ somewhere"."""

import asyncio

import pytest

from repro import obs
from repro.ais import PositionReport, encode_position_report, wrap_aivdm
from repro.service.batcher import SlideBatcher
from repro.service.ingest import IngestQueue
from repro.service.protocol import (
    WATERMARK_PREFIX,
    format_watermark,
    parse_watermark,
)


def _sentence(mmsi: int) -> str:
    payload, fill = encode_position_report(PositionReport(
        message_type=1,
        mmsi=mmsi,
        lon=23.5,
        lat=37.9,
        speed_knots=10.0,
        course_degrees=90.0,
        second_of_minute=0,
    ))
    return wrap_aivdm(payload, fill)


def _wm(source: str, final: bool = False) -> str:
    return f"{WATERMARK_PREFIX}{source},final" if final else (
        f"{WATERMARK_PREFIX}{source}"
    )


class FakeSystem:
    """Records every pipeline call the batcher makes."""

    def __init__(self):
        self.calls = []

    def process_slide(self, batch, query_time):
        self.calls.append(
            (query_time, [(p.timestamp, p.mmsi) for p in batch])
        )
        return None

    def finalize(self):
        self.calls.append(("finalize", None))
        return None


async def _drive(lines, watermark_sources=2, drain=False):
    """Feed ``(receive_time, sentence)`` lines through a fresh batcher."""
    queue = IngestQueue(capacity=10_000)
    system = FakeSystem()
    batcher = SlideBatcher(
        system, queue, slide_seconds=60,
        watermark_sources=watermark_sources,
    )
    for receive_time, sentence in lines:
        queue.put(receive_time, sentence)
    queue.close()
    await batcher.run()
    if drain:
        await batcher.drain()
    return system, batcher


class TestWatermarkProtocol:
    def test_roundtrip(self):
        line = format_watermark(7200, "gw0")
        assert line == "7200\t!REPRO,WM,gw0"
        assert parse_watermark(line.split("\t")[1]) == ("gw0", False)

    def test_final_flag(self):
        line = format_watermark(7200, "gw1", final=True)
        assert parse_watermark(line.split("\t")[1]) == ("gw1", True)

    def test_non_watermarks_and_malformed_are_none(self):
        assert parse_watermark("!AIVDM,1,1,,A,x,0*00") is None
        assert parse_watermark(WATERMARK_PREFIX) is None  # no source
        assert parse_watermark(f"{WATERMARK_PREFIX}gw0,bogus") is None


class TestWatermarkCadence:
    def test_slide_waits_for_every_source(self):
        held, _ = asyncio.run(_drive([
            (10, _sentence(111)),
            (70, _wm("gw0")),
        ]))
        assert held.calls == []  # gw1 has not reported: the slide holds

        released, _ = asyncio.run(_drive([
            (10, _sentence(111)),
            (70, _wm("gw0")),
            (70, _wm("gw1")),
        ]))
        assert released.calls == [(60, [(10, 111)])]

    def test_intermediate_empty_slides_run(self):
        # Watermarks far past the data release every boundary the single
        # node would run, empty ones included (windows must still slide).
        system, _ = asyncio.run(_drive([
            (10, _sentence(111)),
            (200, _wm("gw0")),
            (200, _wm("gw1")),
        ]))
        assert system.calls == [(60, [(10, 111)]), (120, []), (180, [])]

    def test_final_watermark_exempts_its_source(self):
        # gw0 said goodbye at 50; its stale clock must not hold slides
        # back while gw1 keeps advancing.
        system, _ = asyncio.run(_drive([
            (10, _sentence(111)),
            (50, _wm("gw0", final=True)),
            (130, _wm("gw1")),
        ]))
        assert [qt for qt, _ in system.calls] == [60, 120]

    def test_batch_partition_and_deterministic_sort(self):
        # Arrival interleaving across gateway links is erased: each slide
        # takes only positions due at its boundary, sorted by
        # (timestamp, mmsi).
        system, _ = asyncio.run(_drive([
            (70, _sentence(300)),
            (10, _sentence(111)),
            (70, _sentence(100)),
            (200, _wm("gw0")),
            (200, _wm("gw1")),
        ]))
        assert system.calls == [
            (60, [(10, 111)]),
            (120, [(70, 100), (70, 300)]),
            (180, []),
        ]

    def test_watermark_clocks_snapshot_is_monotonic(self):
        async def run():
            with obs.activate(obs.MetricsRegistry()) as registry:
                _, batcher = await _drive([
                    (100, _wm("gw0")),
                    (90, _wm("gw1")),
                    (50, _wm("gw0")),  # stale: must not regress the clock
                ])
                return batcher, registry

        batcher, registry = asyncio.run(run())
        assert batcher.watermark_clocks == {"gw0": 100, "gw1": 90}
        assert registry.counter("service.ingest.watermarks").value == 3

    def test_drain_runs_the_trailing_slide_even_empty(self):
        # Every shard must finalize at the same query time for the fan-in
        # merge to line up, so the trailing drain slide runs with an
        # empty batch too.
        system, _ = asyncio.run(_drive([
            (10, _sentence(111)),
            (70, _wm("gw0")),
            (70, _wm("gw1")),
        ], drain=True))
        assert system.calls == [
            (60, [(10, 111)]),
            (120, []),
            ("finalize", None),
        ]

    def test_drain_slides_until_nothing_is_pending(self):
        # A forced stop mid-stream (no final watermarks, positions past
        # the last released boundary) keeps sliding rather than
        # stranding positions.
        system, _ = asyncio.run(_drive([
            (10, _sentence(111)),
            (70, _wm("gw0")),
            (70, _wm("gw1")),
            (150, _sentence(222)),
        ], drain=True))
        assert system.calls == [
            (60, [(10, 111)]),
            (120, []),
            (180, [(150, 222)]),
            ("finalize", None),
        ]


class TestLegacyMode:
    def test_watermarks_are_counted_and_ignored(self):
        async def run():
            with obs.activate(obs.MetricsRegistry()) as registry:
                system, batcher = await _drive([
                    (10, _sentence(111)),
                    (70, _wm("gw0")),
                ], watermark_sources=0)
                return system, batcher, registry

        system, batcher, registry = asyncio.run(run())
        # The arrival-driven cadence saw one position, no boundary cross.
        assert system.calls == []
        assert batcher.watermark_clocks == {}
        assert (
            registry.counter("service.ingest.watermarks_ignored").value == 1
        )

    def test_rejects_watermark_mode_without_sources(self):
        with pytest.raises(ValueError):
            SlideBatcher(FakeSystem(), IngestQueue(10), slide_seconds=0)
