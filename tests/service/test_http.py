"""HTTP API tests over real sockets."""

import asyncio
import json

from repro import obs
from repro.ais.stream import PositionalTuple
from repro.maritime.recognizer import Alert
from repro.service import AlertRing, HttpApi, VesselStateStore
from tests.obs.test_prometheus import parse_exposition


class FakeSupervisor:
    """Just the three surfaces HttpApi reads from a real supervisor."""

    def __init__(self):
        self.vessels = VesselStateStore()
        self.alert_ring = AlertRing(16)

    def health(self):
        return {"status": "ok", "slides": 3}


async def http_request(port: int, target: str, method: str = "GET"):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(
        f"{method} {target} HTTP/1.1\r\nHost: test\r\n\r\n".encode("ascii")
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, body = raw.partition(b"\r\n\r\n")
    status_line, *header_lines = head.decode("ascii").split("\r\n")
    headers = dict(
        line.split(": ", 1) for line in header_lines if ": " in line
    )
    assert int(headers["Content-Length"]) == len(body)
    return int(status_line.split()[1]), headers, body.decode("utf-8")


def serve(scenario):
    """Run ``scenario(api, supervisor)`` against a live HttpApi."""

    async def runner():
        supervisor = FakeSupervisor()
        api = HttpApi(supervisor, "127.0.0.1", 0)
        await api.start()
        try:
            return await scenario(api, supervisor)
        finally:
            await api.stop()

    return asyncio.run(runner())


class TestHttpApi:
    def test_healthz(self):
        async def scenario(api, supervisor):
            return await http_request(api.port, "/healthz")

        status, headers, body = serve(scenario)
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        assert json.loads(body) == {"status": "ok", "slides": 3}

    def test_metrics_is_valid_exposition(self):
        async def scenario(api, supervisor):
            with obs.activate(obs.MetricsRegistry()):
                obs.count("service.ingest.shed", 5)
                obs.set_gauge("service.up", 1)
                return await http_request(api.port, "/metrics")

        status, headers, body = serve(scenario)
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        families = parse_exposition(body)
        assert families["repro_service_ingest_shed_total"]["type"] == "counter"
        samples = families["repro_service_ingest_shed_total"]["samples"]
        assert samples["repro_service_ingest_shed_total"] == 5.0

    def test_vessel_snapshot_found_and_missing(self):
        async def scenario(api, supervisor):
            supervisor.vessels.update([PositionalTuple(7, 24.0, 37.0, 100)])
            found = await http_request(api.port, "/vessels/7")
            missing = await http_request(api.port, "/vessels/8")
            bad = await http_request(api.port, "/vessels/not-a-number")
            listing = await http_request(api.port, "/vessels")
            return found, missing, bad, listing

        found, missing, bad, listing = serve(scenario)
        assert found[0] == 200
        assert json.loads(found[2])["mmsi"] == 7
        assert missing[0] == 404
        assert bad[0] == 400
        assert json.loads(listing[2]) == {"vessels": [7]}

    def test_alerts_since_cursor(self):
        async def scenario(api, supervisor):
            supervisor.alert_ring.append(
                1800,
                (
                    Alert("suspicious", "area_1", 60, None, 1),
                    Alert("illegalFishing", "area_2", 90, 120, 2),
                ),
            )
            everything = await http_request(api.port, "/alerts")
            tail = await http_request(api.port, "/alerts?since=1")
            bad = await http_request(api.port, "/alerts?since=xyz")
            return everything, tail, bad

        everything, tail, bad = serve(scenario)
        payload = json.loads(everything[2])
        assert [a["seq"] for a in payload["alerts"]] == [1, 2]
        assert payload["last_seq"] == 2
        assert [a["seq"] for a in json.loads(tail[2])["alerts"]] == [2]
        assert bad[0] == 400

    def test_alerts_type_filter(self):
        async def scenario(api, supervisor):
            supervisor.alert_ring.append(
                1800,
                (
                    Alert("suspicious", "area_1", 60, None, 1),
                    Alert("illegalFishing", "area_2", 90, 120, 2),
                    Alert("rendezvous", "", 100, 400, mmsi=3, mmsi2=4),
                    Alert("darkShip", "", 150, mmsi=4),
                ),
            )
            with obs.activate(obs.MetricsRegistry()) as registry:
                pairwise = await http_request(
                    api.port, "/alerts?type=rendezvous,darkShip"
                )
                filtered = registry.snapshot()["counters"].get(
                    "service.http.alerts_filtered"
                )
            single = await http_request(api.port, "/alerts?type=suspicious")
            combined = await http_request(
                api.port, "/alerts?since=1&type=illegalFishing"
            )
            return pairwise, filtered, single, combined

        pairwise, filtered, single, combined = serve(scenario)
        payload = json.loads(pairwise[2])
        assert [a["kind"] for a in payload["alerts"]] == [
            "rendezvous", "darkShip",
        ]
        assert payload["alerts"][0]["mmsi2"] == 4
        # The cursor still reflects the unfiltered ring head.
        assert payload["last_seq"] == 4
        # The two excluded entries were counted, not silently dropped.
        assert filtered == 2
        assert [a["kind"] for a in json.loads(single[2])["alerts"]] == [
            "suspicious"
        ]
        # ``since`` applies before the kind filter.
        assert [a["seq"] for a in json.loads(combined[2])["alerts"]] == [2]

    def test_alerts_type_filter_rejects_unknown_kinds(self):
        async def scenario(api, supervisor):
            unknown = await http_request(api.port, "/alerts?type=meteorStrike")
            empty = await http_request(api.port, "/alerts?type=,")
            return unknown, empty

        unknown, empty = serve(scenario)
        assert unknown[0] == 400
        payload = json.loads(unknown[2])
        assert payload["unknown"] == ["meteorStrike"]
        assert "rendezvous" in payload["known"]
        assert empty[0] == 400

    def test_unknown_path_and_bad_method(self):
        async def scenario(api, supervisor):
            missing = await http_request(api.port, "/nope")
            post = await http_request(api.port, "/healthz", method="POST")
            return missing, post

        missing, post = serve(scenario)
        assert missing[0] == 404
        assert post[0] == 405
