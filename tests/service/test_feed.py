"""Feed hub eviction accounting and shutdown discipline."""

import asyncio

from repro import obs
from repro.service.feed import FeedHub, _Subscriber


def run(coro):
    return asyncio.run(coro)


class TestEvictionAccounting:
    def test_evict_counts_abandoned_lines(self):
        """Every line drained from an evicted subscriber's queue shows up
        in ``service.feed.dropped_lines`` — eviction is never silent loss."""
        async def scenario():
            with obs.activate(obs.MetricsRegistry()) as registry:
                hub = FeedHub("127.0.0.1", 0, queue_size=4)
                subscriber = _Subscriber(session=None, queue_size=4)
                hub._subscribers.add(subscriber)
                for index in range(4):
                    subscriber.queue.put_nowait(f"line{index}\n".encode())
                hub._evict(subscriber)
                return (
                    registry.counter("service.feed.evicted").value,
                    registry.counter("service.feed.dropped_lines").value,
                    subscriber.queue.get_nowait(),
                    hub.evicted_count,
                )

        evicted, dropped, sentinel, hub_count = run(scenario())
        assert evicted == 1
        assert dropped == 4
        assert sentinel is None  # only the unblock sentinel remains
        assert hub_count == 1

    def test_publish_to_full_queue_evicts_and_counts(self):
        async def scenario():
            with obs.activate(obs.MetricsRegistry()) as registry:
                hub = FeedHub("127.0.0.1", 0, queue_size=1)
                subscriber = _Subscriber(session=None, queue_size=1)
                hub._subscribers.add(subscriber)
                hub.publish("fits")
                hub.publish("overflows")
                return (
                    subscriber.evicted,
                    registry.counter("service.feed.dropped_lines").value,
                    hub.subscriber_count,
                )

        evicted, dropped, remaining = run(scenario())
        assert evicted
        assert dropped == 1  # "fits" was abandoned when the queue flushed
        assert remaining == 0


class TestCloseAwaitsWriters:
    def test_close_awaits_evicted_subscriber_task(self):
        """A subscriber whose queue is full at close() is evicted — but its
        writer task must still be awaited, or shutdown leaks a task that is
        mid-way through closing its socket."""
        async def scenario():
            hub = FeedHub("127.0.0.1", 0, queue_size=1)
            subscriber = _Subscriber(session=None, queue_size=1)
            hub._subscribers.add(subscriber)
            subscriber.queue.put_nowait(b"stuck\n")  # queue now full
            finished = asyncio.Event()

            async def writer_stub():
                while await subscriber.queue.get() is not None:
                    pass
                await asyncio.sleep(0.01)  # socket teardown takes a beat
                finished.set()

            subscriber.task = asyncio.ensure_future(writer_stub())
            await hub.close()
            return subscriber.evicted, finished.is_set()

        evicted, writer_finished = run(scenario())
        assert evicted
        assert writer_finished, "close() returned before the evicted writer"

    def test_close_awaits_healthy_subscriber_task(self):
        async def scenario():
            hub = FeedHub("127.0.0.1", 0, queue_size=4)
            subscriber = _Subscriber(session=None, queue_size=4)
            hub._subscribers.add(subscriber)
            finished = asyncio.Event()

            async def writer_stub():
                while await subscriber.queue.get() is not None:
                    pass
                finished.set()

            subscriber.task = asyncio.ensure_future(writer_stub())
            await hub.close()
            return finished.is_set(), hub.subscriber_count

        writer_finished, remaining = run(scenario())
        assert writer_finished
        assert remaining == 0
