"""Vessel snapshot store and alert ring tests."""

import pytest

from repro.ais.stream import PositionalTuple
from repro.maritime.recognizer import Alert
from repro.service import AlertRing, VesselStateStore


class TestVesselStateStore:
    def test_first_position_has_zero_velocity(self):
        store = VesselStateStore()
        store.update([PositionalTuple(1, 24.0, 37.0, 100)])
        snapshot = store.get(1)
        assert snapshot.speed_mps == 0.0
        assert snapshot.positions_seen == 1

    def test_velocity_derived_from_consecutive_positions(self):
        store = VesselStateStore()
        store.update([
            PositionalTuple(1, 24.0, 37.0, 0),
            # ~0.01 deg of longitude at 37N is ~888 m, heading ~east.
            PositionalTuple(1, 24.01, 37.0, 100),
        ])
        snapshot = store.get(1)
        assert snapshot.speed_mps == pytest.approx(8.88, rel=0.05)
        assert snapshot.heading_degrees == pytest.approx(90.0, abs=1.0)
        assert snapshot.timestamp == 100
        assert snapshot.positions_seen == 2

    def test_vessels_are_independent(self):
        store = VesselStateStore()
        store.update([
            PositionalTuple(1, 24.0, 37.0, 0),
            PositionalTuple(2, 25.0, 38.0, 0),
        ])
        assert store.mmsis() == [1, 2]
        assert store.get(3) is None

    def test_snapshot_dict_shape(self):
        store = VesselStateStore()
        store.update([PositionalTuple(9, 24.0, 37.0, 5)])
        payload = store.get(9).to_dict()
        assert payload["mmsi"] == 9
        assert set(payload) >= {
            "lon", "lat", "timestamp", "speed_mps", "speed_knots",
            "heading_degrees", "positions_seen",
        }


class TestAlertRing:
    def alert(self, kind="suspicious"):
        return Alert(kind, "area_1", 60, None, 1)

    def test_sequences_are_monotone(self):
        ring = AlertRing(10)
        ring.append(1800, (self.alert(), self.alert("illegalFishing")))
        ring.append(3600, (self.alert(),))
        assert [e["seq"] for e in ring.since(0)] == [1, 2, 3]
        assert ring.last_seq == 3

    def test_since_cursor(self):
        ring = AlertRing(10)
        ring.append(1800, (self.alert(), self.alert()))
        assert [e["seq"] for e in ring.since(1)] == [2]
        assert ring.since(2) == []
        assert ring.since(99) == []

    def test_capacity_evicts_oldest(self):
        ring = AlertRing(2)
        for query_time in (1, 2, 3):
            ring.append(query_time, (self.alert(),))
        entries = ring.since(0)
        assert [e["seq"] for e in entries] == [2, 3]
        assert len(ring) == 2

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            AlertRing(0)
