"""End-to-end soak tests: TCP ingest must equal the offline replay, byte for byte.

The live path (real sockets -> IngestQueue -> SlideBatcher -> feed) and
the offline path (DataScanner -> StreamReplayer -> slide_feed_line) must
produce identical feed lines for the same sentence stream — at one shard,
at two shards, and across an induced load-shed (where parity holds for
the post-shed stream the batcher recorded, and every shed sentence is
counted in the metrics registry).
"""

import asyncio
import time

from repro import obs
from repro.obs.registry import render_prometheus
from repro.pipeline.config import SystemConfig
from repro.pipeline.system import SurveillanceSystem
from repro.service import ServiceConfig, ServiceSupervisor, offline_feed_lines

EPHEMERAL = {"ingest_port": 0, "feed_port": 0, "http_port": 0}


async def _poll(predicate, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "poll timed out"
        await asyncio.sleep(0.005)


async def run_live(
    sentences, world, specs, config=None, service=None, system_factory=None
):
    """Stream ``sentences`` over real TCP, collect the feed, drain cleanly."""
    supervisor = ServiceSupervisor(
        world,
        specs,
        config,
        service or ServiceConfig(**EPHEMERAL),
        system_factory=system_factory,
    )
    await supervisor.start()
    ports = supervisor.ports()

    # Slide lines can exceed the 64 KiB default StreamReader limit.
    feed_reader, feed_writer = await asyncio.open_connection(
        "127.0.0.1", ports["feed"], limit=1 << 24
    )
    await _poll(lambda: supervisor.feed.subscriber_count == 1)

    _, ingest_writer = await asyncio.open_connection(
        "127.0.0.1", ports["ingest"]
    )
    for receive_time, sentence in sentences:
        ingest_writer.write(f"{receive_time}\t{sentence}\n".encode("ascii"))
        if ingest_writer.transport.get_write_buffer_size() > 1 << 16:
            await ingest_writer.drain()
    await ingest_writer.drain()
    ingest_writer.close()
    await ingest_writer.wait_closed()

    # All lines are enqueued once the server side has seen the EOF.
    await _poll(lambda: supervisor.ingest.open_connections == 0)
    await supervisor.drain_and_stop()

    lines = []
    while True:
        raw = await feed_reader.readline()
        if not raw:
            break
        lines.append(raw.decode("utf-8").rstrip("\n"))
    feed_writer.close()
    try:
        await feed_writer.wait_closed()
    except (ConnectionResetError, BrokenPipeError):
        pass
    return supervisor, lines


class TestSoakParity:
    def test_tcp_ingest_matches_offline_replay_one_shard(
        self, world, small_fleet, soak_sentences
    ):
        supervisor, live = asyncio.run(
            run_live(soak_sentences, world, small_fleet["specs"])
        )
        offline = offline_feed_lines(
            soak_sentences, world, small_fleet["specs"]
        )
        assert supervisor.queue.shed_count == 0
        assert live == offline  # byte-identical, slide for slide
        assert supervisor.batcher.scanner.statistics.reassembled > 0
        assert any('"type": "finalize"' in line or
                   '"type":"finalize"' in line for line in live)

    def test_tcp_ingest_matches_offline_replay_two_shards(
        self, world, small_fleet, soak_sentences
    ):
        service = ServiceConfig(shards=2, **EPHEMERAL)
        supervisor, live = asyncio.run(
            run_live(soak_sentences, world, small_fleet["specs"],
                     service=service)
        )
        offline = offline_feed_lines(
            soak_sentences, world, small_fleet["specs"], shards=2
        )
        assert supervisor.queue.shed_count == 0
        assert live == offline
        # And the sharded offline replay equals the single-process one —
        # the determinism guarantee the service inherits.
        assert offline == offline_feed_lines(
            soak_sentences, world, small_fleet["specs"], shards=1
        )

    def test_induced_load_shed_is_counted_and_parity_holds(
        self, world, small_fleet, soak_sentences
    ):
        """Overrun a tiny queue; parity must hold for the post-shed stream."""

        class SlowSystem:
            """Wraps the real pipeline, stalling each slide so the socket
            reader outruns the batcher and the bounded queue must shed."""

            def __init__(self, inner):
                self._inner = inner
                self.database = inner.database

            def process_slide(self, batch, query_time):
                time.sleep(0.05)
                return self._inner.process_slide(batch, query_time)

            def finalize(self):
                return self._inner.finalize()

        service = ServiceConfig(
            ingest_queue_size=64, record_ingest=True, **EPHEMERAL
        )
        def factory(world, specs, config, svc):
            return SlowSystem(SurveillanceSystem(world, specs, config))
        with obs.activate(obs.MetricsRegistry()) as registry:
            supervisor, live = asyncio.run(
                run_live(
                    soak_sentences,
                    world,
                    small_fleet["specs"],
                    service=service,
                    system_factory=factory,
                )
            )
            exposition = render_prometheus(registry)

        assert supervisor.queue.shed_count > 0, "test failed to induce shedding"
        # Shed events are counted, never silent — and visible on /metrics.
        assert (
            registry.counter("service.ingest.shed").value
            == supervisor.queue.shed_count
        )
        assert (
            f"repro_service_ingest_shed_total {supervisor.queue.shed_count}"
            in exposition
        )
        # The surviving stream is exactly what the batcher recorded, and
        # replaying it offline reproduces the live feed byte for byte.
        recorded = supervisor.batcher.ingested
        assert len(recorded) == len(soak_sentences) - supervisor.queue.shed_count
        offline = offline_feed_lines(recorded, world, small_fleet["specs"])
        assert live == offline
