"""Shared helpers for the live-service tests."""

import pytest

from repro.ais import (
    PositionReport,
    encode_position_report,
    wrap_aivdm,
    wrap_aivdm_fragments,
)


def to_sentences(positions, fragment_every: int = 0) -> list[tuple[int, str]]:
    """Encode positional tuples as (receive_time, AIVDM sentence) pairs.

    ``fragment_every`` > 0 sends every N-th report as a two-fragment
    type-19 group, exercising reassembly on both the online and offline
    paths identically.
    """
    sentences = []
    for index, position in enumerate(positions):
        fragmented = fragment_every and index % fragment_every == 0
        report = PositionReport(
            message_type=19 if fragmented else 1,
            mmsi=position.mmsi,
            lon=position.lon,
            lat=position.lat,
            speed_knots=10.0,
            course_degrees=90.0,
            second_of_minute=position.timestamp % 60,
        )
        payload, fill = encode_position_report(report)
        if fragmented:
            for sentence in wrap_aivdm_fragments(
                payload, fill, message_id=index % 10
            ):
                sentences.append((position.timestamp, sentence))
        else:
            sentences.append((position.timestamp, wrap_aivdm(payload, fill)))
    return sentences


@pytest.fixture(scope="session")
def soak_sentences(small_fleet):
    """The small fleet's stream as raw sentences, fragments included."""
    return to_sentences(small_fleet["stream"], fragment_every=40)
