"""Resumable subscriptions: the RESUME handshake, the replay ring, and
the reconnecting feed reader.

The contract under test (docs/SERVICE.md): a subscriber that never
sends a handshake sees the classic unstamped feed byte for byte; one
that opens with ``RESUME <last-seq>`` is switched to stamped
``<seq>\\t<payload>`` delivery starting with every ring-held line after
``last-seq`` — so an evicted or disconnected consumer reconnects and
recovers the gap, and any lines the bounded ring already evicted are
counted, never silently skipped."""

import asyncio

import pytest

from repro import obs
from repro.service.feed import FeedHub
from repro.service.feedclient import ResumableFeedReader
from repro.service.protocol import (
    format_resume,
    format_stamped_line,
    parse_resume,
    parse_stamped_line,
)
from repro.resilience.retry import BackoffPolicy
from repro.transport import create_transport

FAST_RECONNECT = BackoffPolicy(
    initial_seconds=0.01, multiplier=1.0, max_seconds=0.01, max_attempts=5
)


class TestWireFormat:
    def test_resume_roundtrip(self):
        assert parse_resume(format_resume(0)) == 0
        assert parse_resume(format_resume(41)) == 41

    def test_resume_rejects_garbage_and_negatives(self):
        assert parse_resume("RESUME") is None
        assert parse_resume("RESUME x") is None
        assert parse_resume("RESUME -1") is None
        assert parse_resume('{"type":"slide"}') is None

    def test_format_resume_rejects_negative(self):
        with pytest.raises(ValueError):
            format_resume(-1)

    def test_stamped_roundtrip(self):
        line = format_stamped_line(7, '{"alerts":[]}')
        assert line == '7\t{"alerts":[]}'
        assert parse_stamped_line(line) == (7, '{"alerts":[]}')

    def test_stamped_payload_may_contain_tabs(self):
        seq, payload = parse_stamped_line(format_stamped_line(3, "a\tb"))
        assert (seq, payload) == (3, "a\tb")

    def test_unstamped_lines_parse_to_none(self):
        assert parse_stamped_line('{"alerts":[]}') is None
        assert parse_stamped_line("0\tpayload") is None
        assert parse_stamped_line("-2\tpayload") is None


async def _subscribe(host, port, transport_name="tcp", resume=None):
    """One feed subscriber session, optionally sending the handshake."""
    transport = create_transport(transport_name)
    if resume is not None and hasattr(transport, "set_feed_resume"):
        transport.set_feed_resume(resume)
        return await transport.connect(host, port, "feed")
    session = await transport.connect(host, port, "feed")
    if resume is not None:
        await session.send(format_resume(resume))
    return session


async def _drain(session, count):
    lines = []
    while len(lines) < count:
        line = await session.receive()
        if line is None:
            break
        lines.append(line)
    return lines


class TestResumeHandshake:
    @pytest.mark.parametrize(
        "transport_name", ("tcp", "websocket", "http", "chaos+tcp")
    )
    def test_resume_zero_replays_the_whole_ring_stamped(
        self, transport_name
    ):
        async def run():
            hub = FeedHub(
                "127.0.0.1", 0,
                transport=create_transport(transport_name),
            )
            await hub.start()
            for index in range(3):
                hub.publish(f"line-{index}")
            session = await _subscribe(
                "127.0.0.1", hub.port, transport_name, resume=0
            )
            lines = await _drain(session, 3)
            await session.close()
            await hub.close()
            return lines

        assert asyncio.run(run()) == [
            f"{seq}\tline-{seq - 1}" for seq in (1, 2, 3)
        ]

    def test_silent_subscriber_gets_classic_unstamped_bytes(self):
        """Resumability is opt-in: without the handshake the feed's
        byte-identity contract is untouched."""
        async def run():
            hub = FeedHub("127.0.0.1", 0)
            await hub.start()
            session = await _subscribe("127.0.0.1", hub.port)
            while hub.subscriber_count < 1:
                await asyncio.sleep(0.005)
            hub.publish("plain")
            lines = await _drain(session, 1)
            await session.close()
            await hub.close()
            return lines

        assert asyncio.run(run()) == ["plain"]

    def test_resume_mid_stream_replays_only_the_gap(self):
        async def run():
            hub = FeedHub("127.0.0.1", 0)
            await hub.start()
            for index in range(5):
                hub.publish(f"line-{index}")
            session = await _subscribe("127.0.0.1", hub.port, resume=3)
            lines = await _drain(session, 2)
            await session.close()
            await hub.close()
            return lines, hub.resumed_count

        lines, resumed = asyncio.run(run())
        assert lines == ["4\tline-3", "5\tline-4"]
        assert resumed == 1

    def test_ring_evicted_lines_are_counted_as_gap(self):
        """A consumer that stayed away longer than the ring is honest
        about it: the unrecoverable lines are counted, the survivors
        still replay."""
        async def run():
            with obs.activate(obs.MetricsRegistry()) as registry:
                hub = FeedHub("127.0.0.1", 0, replay_ring=4)
                await hub.start()
                for index in range(10):
                    hub.publish(f"line-{index}")
                session = await _subscribe("127.0.0.1", hub.port, resume=0)
                lines = await _drain(session, 4)
                await session.close()
                await hub.close()
                gap = registry.counter(
                    "service.feed.resume_gap_lines"
                ).value
                return lines, gap

        lines, gap = asyncio.run(run())
        assert lines == [f"{seq}\tline-{seq - 1}" for seq in (7, 8, 9, 10)]
        assert gap == 6

    def test_bad_handshake_is_counted_and_ignored(self):
        async def run():
            with obs.activate(obs.MetricsRegistry()) as registry:
                hub = FeedHub("127.0.0.1", 0)
                await hub.start()
                session = await create_transport("tcp").connect(
                    "127.0.0.1", hub.port, "feed"
                )
                await session.send("NOT A HANDSHAKE")
                while not registry.counter(
                    "service.feed.bad_handshakes"
                ).value:
                    await asyncio.sleep(0.005)
                hub.publish("still-served")
                lines = await _drain(session, 1)
                await session.close()
                await hub.close()
                return lines

        # The subscriber stays on the classic unstamped feed.
        assert asyncio.run(run()) == ["still-served"]

    def test_replay_ring_must_hold_at_least_one_line(self):
        with pytest.raises(ValueError, match="replay_ring"):
            FeedHub("127.0.0.1", 0, replay_ring=0)


class TestEvictionThenResume:
    def test_evicted_slow_consumer_recovers_the_gap(self):
        """The satellite scenario end to end: a subscriber too slow for
        its queue is evicted mid-stream, reconnects with ``RESUME
        <last-seq>``, and receives exactly the lines it missed."""
        async def scenario():
            hub = FeedHub("127.0.0.1", 0, queue_size=2)
            await hub.start()
            hub.publish("line-0")
            session = await _subscribe("127.0.0.1", hub.port, resume=0)
            line = (await _drain(session, 1))[0]
            assert line == "1\tline-0"
            for index in range(1, 8):
                hub.publish(f"line-{index}")
            while hub.evicted_count < 1:
                await asyncio.sleep(0.005)
            await session.close()
            session = await _subscribe("127.0.0.1", hub.port, resume=1)
            recovered = await _drain(session, 7)
            await session.close()
            await hub.close()
            return recovered

        recovered = asyncio.run(scenario())
        assert recovered == [
            f"{seq}\tline-{seq - 1}" for seq in range(2, 9)
        ]


class TestResumableFeedReader:
    def test_survives_eviction_gapless(self):
        """The reader yields every payload exactly once across a forced
        eviction — reconnect, RESUME, ring replay, dedup."""
        async def scenario():
            hub = FeedHub("127.0.0.1", 0, queue_size=2)
            await hub.start()
            reader = ResumableFeedReader(
                "tcp", "127.0.0.1", hub.port, policy=FAST_RECONNECT
            )
            received: list[str] = []

            async def consume():
                async for payload in reader.lines():
                    received.append(payload)

            consumer = asyncio.ensure_future(consume())
            while hub.subscriber_count < 1:
                await asyncio.sleep(0.005)
            hub.publish("line-0")
            while len(received) < 1:
                await asyncio.sleep(0.005)
            # Evict the live subscriber; the ring keeps what it missed.
            for subscriber in list(hub._subscribers):
                hub._evict(subscriber)
            for index in range(1, 6):
                hub.publish(f"line-{index}")
            while len(received) < 6:
                await asyncio.sleep(0.005)
            await hub.close()
            reader.stop()
            consumer.cancel()
            try:
                await consumer
            except asyncio.CancelledError:
                pass
            return received, reader.reconnects, reader.last_seq

        received, reconnects, last_seq = asyncio.run(scenario())
        assert received == [f"line-{index}" for index in range(6)]
        assert reconnects == 1
        assert last_seq == 6

    def test_gives_up_after_the_dial_budget(self):
        async def scenario():
            # Nothing listens on port 1.
            reader = ResumableFeedReader(
                "tcp", "127.0.0.1", 1, policy=FAST_RECONNECT
            )
            return [payload async for payload in reader.lines()]

        assert asyncio.run(scenario()) == []

    def test_http_reader_resumes_via_query_parameter(self):
        """Over chaos+http the resume rides ``GET /feed?resume=<n>`` —
        the reader must find ``set_feed_resume`` through the wrapper."""
        async def scenario():
            hub = FeedHub(
                "127.0.0.1", 0, transport=create_transport("http")
            )
            await hub.start()
            for index in range(4):
                hub.publish(f"line-{index}")
            reader = ResumableFeedReader(
                "chaos+http", "127.0.0.1", hub.port, policy=FAST_RECONNECT
            )
            received: list[str] = []

            async def consume():
                async for payload in reader.lines():
                    received.append(payload)

            consumer = asyncio.ensure_future(consume())
            while len(received) < 4:
                await asyncio.sleep(0.005)
            await hub.close()
            reader.stop()
            consumer.cancel()
            try:
                await consumer
            except asyncio.CancelledError:
                pass
            return received

        assert asyncio.run(scenario()) == [
            f"line-{index}" for index in range(4)
        ]
