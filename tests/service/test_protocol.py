"""Wire-format tests: ingest line parsing and feed serialization stability."""

import json

from repro.maritime.recognizer import Alert
from repro.pipeline.metrics import SlideReport
from repro.service import (
    format_ingest_line,
    parse_ingest_line,
    slide_feed_line,
)
from repro.tracking.types import CriticalPoint, MovementEventType


class TestParseIngestLine:
    def test_timestamped_tab_form(self):
        assert parse_ingest_line("123\t!AIVDM,...", 999) == (123, "!AIVDM,...")

    def test_timestamped_space_form(self):
        assert parse_ingest_line("123 !AIVDM,...", 999) == (123, "!AIVDM,...")

    def test_bare_sentence_gets_default_time(self):
        assert parse_ingest_line("!AIVDM,...", 999) == (999, "!AIVDM,...")

    def test_blank_and_comment_lines_skipped(self):
        assert parse_ingest_line("", 0) is None
        assert parse_ingest_line("   \r\n", 0) is None
        assert parse_ingest_line("# a comment", 0) is None

    def test_garbage_prefix_passes_through_for_scanner_to_reject(self):
        # A non-integer first field is not a timestamp; the whole line
        # goes to the scanner (which counts it as bad_format).
        time, sentence = parse_ingest_line("junk line", 7)
        assert time == 7
        assert sentence == "junk line"

    def test_round_trip_with_format(self):
        line = format_ingest_line(456, "!AIVDM,1,1,,A,x,0*00")
        assert parse_ingest_line(line, 0) == (456, "!AIVDM,1,1,,A,x,0*00")


class TestSlideFeedLine:
    def report(self):
        point = CriticalPoint(
            mmsi=1,
            lon=24.5,
            lat=37.5,
            timestamp=1700,
            annotations=frozenset({MovementEventType.TURN}),
            speed_mps=5.0,
            heading_degrees=90.0,
        )
        return SlideReport(
            query_time=1800,
            raw_positions=10,
            movement_events=3,
            fresh_critical_points=1,
            expired_critical_points=0,
            recognized_complex_events=1,
            alerts=(Alert("suspicious", "area_1", 60, None, 1),),
            timings={"tracking": 0.001},
            fresh_points=(point,),
        )

    def test_line_is_single_line_json(self):
        line = slide_feed_line(self.report())
        assert "\n" not in line
        payload = json.loads(line)
        assert payload["type"] == "slide"
        assert payload["query_time"] == 1800
        assert payload["alerts"][0]["kind"] == "suspicious"
        assert payload["critical_points"][0]["annotations"] == ["turn"]

    def test_serialization_is_deterministic(self):
        assert slide_feed_line(self.report()) == slide_feed_line(self.report())

    def test_finalize_kind(self):
        payload = json.loads(slide_feed_line(self.report(), "finalize"))
        assert payload["type"] == "finalize"
