"""Merge units: the cluster line must be the single node's line."""

import json

import pytest

from repro.gateway.merge import (
    alert_dict_sort_key,
    merge_order_key,
    merge_slide_payloads,
    merged_feed_line,
    parse_feed_line,
)
from repro.maritime.recognizer import Alert, alert_sort_key
from repro.service.protocol import alert_to_dict


def _payload(qt=60, kind="slide", alerts=(), points=(), raw=0, events=0, ces=0):
    return {
        "type": kind,
        "query_time": qt,
        "raw_positions": raw,
        "movement_events": events,
        "recognized": ces,
        "alerts": list(alerts),
        "critical_points": list(points),
    }


def _point(mmsi, ts, lon=23.0):
    return {
        "mmsi": mmsi,
        "lon": lon,
        "lat": 37.0,
        "timestamp": ts,
        "annotations": [],
        "speed_knots": 5.0,
        "heading_degrees": 90.0,
        "duration_seconds": 0,
    }


class TestAlertDictSortKey:
    def test_matches_the_recognizer_tuple_key(self):
        alerts = [
            Alert("illegalShipping", "a3", 10, 20, 111, None),
            Alert("dangerousShipping", "a1", 10, None, 222, None),
            Alert("illegalShipping", "a1", 5, 9, 333, None),
            Alert("rendezvous", "open", 5, 9, 111, 222),
        ]
        by_tuple = sorted(alerts, key=alert_sort_key)
        by_dict = sorted(
            (alert_to_dict(a) for a in alerts), key=alert_dict_sort_key
        )
        assert by_dict == [alert_to_dict(a) for a in by_tuple]


class TestMergeOrderKey:
    def test_slide_sorts_before_finalize_at_same_boundary(self):
        assert merge_order_key(_payload(60, "slide")) < merge_order_key(
            _payload(60, "finalize")
        )
        assert merge_order_key(_payload(60, "finalize")) < merge_order_key(
            _payload(120, "slide")
        )

    def test_unknown_type_raises(self):
        with pytest.raises(ValueError):
            merge_order_key(_payload(60, "snapshot"))


class TestMergeSlidePayloads:
    def test_counters_sum_and_collections_resort(self):
        a1 = alert_to_dict(Alert("illegalShipping", "a2", 30, 40, 111, None))
        a2 = alert_to_dict(Alert("illegalShipping", "a1", 10, 20, 222, None))
        merged = merge_slide_payloads([
            _payload(alerts=[a1], points=[_point(111, 55)], raw=3,
                     events=2, ces=1),
            _payload(alerts=[a2], points=[_point(222, 50)], raw=4,
                     events=1, ces=1),
        ])
        assert merged["raw_positions"] == 7
        assert merged["movement_events"] == 3
        assert merged["recognized"] == 2
        assert merged["alerts"] == [a2, a1]
        assert [p["mmsi"] for p in merged["critical_points"]] == [111, 222]

    def test_single_payload_roundtrips_byte_identically(self):
        payload = _payload(
            alerts=[alert_to_dict(Alert("illegalShipping", "a1", 1, 2,
                                        111, None))],
            points=[_point(111, 50), _point(111, 55)],
            raw=2, events=2, ces=1,
        )
        line = merged_feed_line([payload])
        assert json.loads(line) == payload
        # Compact separators, sorted keys: the single node's serializer.
        assert ": " not in line and ", " not in line

    def test_mismatched_query_times_raise(self):
        with pytest.raises(ValueError):
            merge_slide_payloads([_payload(60), _payload(120)])

    def test_mismatched_types_raise(self):
        with pytest.raises(ValueError):
            merge_slide_payloads([
                _payload(60, "slide"), _payload(60, "finalize")
            ])

    def test_empty_merge_raises(self):
        with pytest.raises(ValueError):
            merge_slide_payloads([])


class TestParseFeedLine:
    def test_valid_json_object(self):
        assert parse_feed_line('{"type":"slide"}') == {"type": "slide"}

    def test_rejects_non_json_and_non_objects(self):
        assert parse_feed_line("not json") is None
        assert parse_feed_line("[1,2]") is None
