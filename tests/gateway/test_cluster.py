"""The tentpole acceptance tests: a 2-gateway × 4-runtime cluster must
be byte-identical to one single-node pipeline — through the merged
subscription, across transports, and across a runtime crash/restart."""

import asyncio
import json
import time

import pytest

from repro.gateway import GatewayCluster, GatewayClusterConfig
from repro.pipeline.config import SystemConfig
from repro.service import offline_feed_lines
from tests.gateway.conftest import feed_gateways, http_get, split_round_robin
from tests.service.conftest import to_sentences


async def _poll(predicate, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "poll timed out"
        await asyncio.sleep(0.005)


async def _quiesce(cluster) -> None:
    """Wait until every link and runtime queue is empty, plus a breath
    for the batchers to finish the line in flight."""
    await _poll(lambda: all(
        link.depth == 0 for node in cluster.nodes for link in node.links
    ))
    await _poll(lambda: all(
        len(supervisor.queue) == 0 for supervisor in cluster.supervisors
    ))
    await asyncio.sleep(0.05)


@pytest.fixture(scope="module")
def vessel_config():
    return SystemConfig(ce_scope="vessel")


@pytest.fixture(scope="module")
def cluster_sentences(small_fleet):
    return to_sentences(small_fleet["stream"], fragment_every=40)


@pytest.fixture(scope="module")
def oracle(cluster_sentences, world, small_fleet, vessel_config):
    """The single-node ground truth for the same sentences."""
    return offline_feed_lines(
        cluster_sentences, world, small_fleet["specs"], config=vessel_config
    )


class TestClusterParity:
    def test_requires_vessel_scope(self, world, small_fleet):
        with pytest.raises(ValueError, match="ce_scope"):
            GatewayCluster(world, small_fleet["specs"], SystemConfig())

    def test_two_by_four_matches_single_node_byte_for_byte(
        self, world, small_fleet, vessel_config, cluster_sentences, oracle
    ):
        async def run():
            cluster = GatewayCluster(
                world,
                small_fleet["specs"],
                vessel_config,
                GatewayClusterConfig(gateways=2, runtimes=4),
            )
            await cluster.start()
            ports = cluster.ports()

            # An external consumer of the merged feed, over the socket.
            feed_reader, feed_writer = await asyncio.open_connection(
                "127.0.0.1", ports["feed"], limit=1 << 24
            )
            await _poll(
                lambda: cluster.aggregator.hub.subscriber_count == 1
            )

            await feed_gateways(
                cluster, split_round_robin(cluster_sentences, 2)
            )
            await _quiesce(cluster)

            # Cluster vitals while live: /healthz and federated /metrics.
            status, health_body = await http_get(
                "127.0.0.1", ports["http"], "/healthz"
            )
            assert status == 200
            health = json.loads(health_body)
            mstatus, metrics_body = await http_get(
                "127.0.0.1", ports["http"], "/metrics"
            )
            assert mstatus == 200

            await cluster.drain_and_stop()

            subscribed = []
            while True:
                raw = await feed_reader.readline()
                if not raw:
                    break
                subscribed.append(raw.decode("utf-8").rstrip("\n"))
            feed_writer.close()
            try:
                await feed_writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            return cluster, health, metrics_body, subscribed

        cluster, health, metrics, subscribed = asyncio.run(run())

        # The tentpole claim: merged bytes == single-node bytes.
        assert cluster.merged_lines == oracle
        # And the socket subscription carried exactly those bytes.
        assert subscribed == oracle

        # Health: every runtime ok, both gateways reporting, watermark
        # clocks visible per runtime.
        assert health["status"] == "ok"
        assert [n["name"] for n in health["nodes"]] == ["gw0", "gw1"]
        assert len(health["runtimes"]) == 4
        for runtime in health["runtimes"]:
            assert runtime["status"] == "ok"
            assert runtime["watermarks"]["sources"] == 2
            assert set(runtime["watermarks"]["clocks"]) == {"gw0", "gw1"}

        # Federated metrics: per-node sections plus the cluster sum.
        assert "repro_node_gw0_gateway_ingest_lines_total" in metrics
        assert "repro_node_gw1_gateway_ingest_lines_total" in metrics
        assert "repro_cluster_gateway_ingest_lines_total" in metrics
        per_node = [
            int(line.rsplit(" ", 1)[1])
            for line in metrics.splitlines()
            if line.startswith("repro_node_gw")
            and "_gateway_ingest_lines_total " in line
        ]
        cluster_total = next(
            int(line.rsplit(" ", 1)[1])
            for line in metrics.splitlines()
            if line.startswith("repro_cluster_gateway_ingest_lines_total ")
        )
        assert sum(per_node) == cluster_total == len(cluster_sentences)

    def test_parity_holds_on_websocket_ingest(
        self, world, small_fleet, vessel_config, cluster_sentences, oracle
    ):
        """Same cluster, client-facing WebSocket transport end to end."""

        async def run():
            cluster = GatewayCluster(
                world,
                small_fleet["specs"],
                vessel_config,
                GatewayClusterConfig(
                    gateways=2, runtimes=2, transport="websocket"
                ),
            )
            await cluster.start()
            await feed_gateways(
                cluster, split_round_robin(cluster_sentences, 2)
            )
            await cluster.drain_and_stop()
            return cluster

        cluster = asyncio.run(run())
        assert cluster.merged_lines == oracle


class TestClusterChaos:
    def test_crash_restart_is_invisible_in_the_merged_bytes(
        self, world, small_fleet, vessel_config, cluster_sentences, oracle,
        tmp_path,
    ):
        """Kill one runtime at a quiescent point mid-stream; /healthz
        reports the cluster degraded; after a journal-replay restart the
        merged output is byte-identical to the undisturbed single node."""
        streams = split_round_robin(cluster_sentences, 2)
        midpoint = cluster_sentences[len(cluster_sentences) // 2][0]
        first = [[p for p in s if p[0] <= midpoint] for s in streams]
        second = [[p for p in s if p[0] > midpoint] for s in streams]

        async def run():
            cluster = GatewayCluster(
                world,
                small_fleet["specs"],
                vessel_config,
                GatewayClusterConfig(
                    gateways=2, runtimes=4, wal_root=str(tmp_path)
                ),
            )
            await cluster.start()
            ports = cluster.ports()

            await feed_gateways(cluster, first)
            await _quiesce(cluster)

            victim = 2
            await cluster.crash_runtime(victim)
            status, body = await http_get(
                "127.0.0.1", ports["http"], "/healthz"
            )
            assert status == 200
            health = json.loads(body)
            assert health["status"] == "degraded"
            assert health["runtimes"][victim]["status"] == "down"

            await cluster.restart_runtime(victim)
            recovered = cluster.supervisors[victim].recovered_records
            _, body = await http_get("127.0.0.1", ports["http"], "/healthz")
            assert json.loads(body)["status"] == "ok"

            await feed_gateways(cluster, second)
            await cluster.drain_and_stop()
            return cluster, recovered

        cluster, recovered = asyncio.run(run())
        assert recovered > 0, "restart must replay the journaled stream"
        assert cluster.merged_lines == oracle
