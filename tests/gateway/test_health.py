"""Failure detection and supervised failover.

The detector and supervisor are driven with injected clocks and stub
clusters — no sleeping, no sockets — then one end-to-end test partitions
a real cluster on the ``chaos+tcp`` transport and lets the supervisor
close the loop, asserting the healed merged feed is byte-identical to
the single-node oracle."""

import asyncio
import json
import time

import pytest

from repro import obs
from repro.gateway import GatewayCluster, GatewayClusterConfig
from repro.gateway.health import ClusterSupervisor, LinkFailureDetector
from repro.pipeline.config import SystemConfig
from repro.resilience.retry import BackoffPolicy
from repro.service import offline_feed_lines
from repro.service.batcher import SlideBatcher
from repro.service.protocol import format_heartbeat, parse_heartbeat
from repro.transport import chaosnet
from tests.gateway.conftest import http_get, split_round_robin
from tests.service.conftest import to_sentences


class FakeClock:
    def __init__(self, now: float = 100.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestLinkFailureDetector:
    def test_starts_up_and_one_failure_makes_it_suspect(self):
        clock = FakeClock()
        detector = LinkFailureDetector(down_after_seconds=2.0, clock=clock)
        assert detector.state() == "up"
        detector.record_failure()
        assert detector.state() == "suspect"
        assert detector.consecutive_failures == 1

    def test_down_after_unbroken_failure_window(self):
        clock = FakeClock()
        detector = LinkFailureDetector(down_after_seconds=2.0, clock=clock)
        detector.record_failure()
        clock.advance(1.99)
        assert detector.state() == "suspect"
        clock.advance(0.01)
        assert detector.state() == "down"

    def test_one_success_heals_completely(self):
        """The window measures *unbroken* failure: a single delivered
        line resets suspicion entirely (phi-accrual's decay, squared)."""
        clock = FakeClock()
        detector = LinkFailureDetector(down_after_seconds=2.0, clock=clock)
        detector.record_failure()
        clock.advance(5.0)
        assert detector.state() == "down"
        detector.record_success()
        assert detector.state() == "up"
        detector.record_failure()
        assert detector.state() == "suspect", (
            "the old streak must not bleed into the new one"
        )

    def test_first_failure_timestamp_is_sticky(self):
        clock = FakeClock()
        detector = LinkFailureDetector(down_after_seconds=2.0, clock=clock)
        detector.record_failure()
        first = detector.first_failure_at
        clock.advance(1.0)
        detector.record_failure()
        assert detector.first_failure_at == first
        assert detector.consecutive_failures == 2

    def test_snapshot_shape(self):
        detector = LinkFailureDetector(down_after_seconds=3.0)
        snapshot = detector.snapshot()
        assert snapshot == {
            "state": "up",
            "consecutive_failures": 0,
            "down_after_seconds": 3.0,
        }

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError, match="positive"):
            LinkFailureDetector(down_after_seconds=0)


class TestHeartbeatProtocol:
    def test_roundtrip(self):
        line = format_heartbeat("gw1", 42)
        receive_time, _, sentence = line.partition("\t")
        assert receive_time == "0", "heartbeats must never advance clocks"
        assert parse_heartbeat(sentence) == ("gw1", 42)

    def test_non_heartbeats_are_ignored(self):
        assert parse_heartbeat("!AIVDM,1,1,,A,xyz,0*00") is None
        assert parse_heartbeat("!REPRO,WM,gw0,123") is None
        assert parse_heartbeat("!REPRO,HB,gw0,notanumber") is None

    def test_batcher_discards_heartbeats_before_the_journal(self):
        """A heartbeat is counted and dropped before journaling, watermark
        clocks, and the scanner — a replayed journal must not contain
        liveness probes, and the slide cadence must not see them."""

        class ExplodingJournal:
            def append(self, receive_time, sentence):
                raise AssertionError("heartbeat reached the journal")

        async def scenario():
            batcher = SlideBatcher(
                system=None, queue=None, slide_seconds=60,
                journal=ExplodingJournal(), record_ingest=True,
                watermark_sources=1,
            )
            with obs.activate(obs.MetricsRegistry()) as registry:
                _, _, sentence = format_heartbeat("gw0", 7).partition("\t")
                await batcher._ingest(0, sentence, journal=True)
                return (
                    registry.counter("service.ingest.heartbeats").value,
                    batcher.ingested,
                    batcher._wm_clocks,
                )

        heartbeats, ingested, clocks = asyncio.run(scenario())
        assert heartbeats == 1
        assert ingested == []
        assert clocks == {}


class StubLink:
    def __init__(self, detector):
        self.detector = detector
        self.sent: list[tuple[str, bool]] = []

    def send(self, line: str, control: bool = False) -> None:
        self.sent.append((line, control))


class StubNode:
    def __init__(self, name: str, links):
        self.name = name
        self.links = links


class StubCluster:
    """Two gateways over two runtimes, with scripted chaos hooks."""

    def __init__(self, gateways: int = 2, runtimes: int = 2, clock=None):
        clock = clock or time.monotonic
        self.supervisors = [object() for _ in range(runtimes)]
        self.nodes = [
            StubNode(f"gw{g}", [
                StubLink(LinkFailureDetector(
                    down_after_seconds=1.0, clock=clock
                ))
                for _ in range(runtimes)
            ])
            for g in range(gateways)
        ]
        self.crashed: set[int] = set()
        self.calls: list[tuple[str, int]] = []

    def is_crashed(self, index: int) -> bool:
        return index in self.crashed

    async def crash_runtime(self, index: int) -> None:
        self.calls.append(("crash", index))
        self.crashed.add(index)

    async def restart_runtime(self, index: int) -> None:
        self.calls.append(("restart", index))
        self.crashed.discard(index)


#: No-wait backoff for supervisor unit tests.
INSTANT = BackoffPolicy(
    initial_seconds=0.0001, multiplier=1.0, max_seconds=0.0001, max_attempts=3
)


class TestClusterSupervisor:
    def test_tick_heartbeats_every_link(self):
        cluster = StubCluster(gateways=2, runtimes=3)
        supervisor = ClusterSupervisor(cluster)
        supervisor.tick()
        supervisor.tick()
        for node in cluster.nodes:
            for link in node.links:
                assert len(link.sent) == 2
                line, control = link.sent[0]
                assert control, "heartbeats ride the control-line channel"
                _, _, sentence = line.partition("\t")
                assert parse_heartbeat(sentence) == (node.name, 1)
        assert supervisor.heartbeats_sent == 12

    def test_healthy_cluster_is_left_alone(self):
        cluster = StubCluster()
        supervisor = ClusterSupervisor(cluster, policy=INSTANT)
        assert asyncio.run(supervisor.check_once()) == []
        assert cluster.calls == []

    def test_suspect_is_not_enough_to_heal(self):
        clock = FakeClock()
        cluster = StubCluster(clock=clock)
        supervisor = ClusterSupervisor(cluster, policy=INSTANT, clock=clock)
        cluster.nodes[0].links[1].detector.record_failure()
        assert asyncio.run(supervisor.check_once()) == []
        assert cluster.calls == []

    def test_down_link_triggers_crash_restart_and_reset(self):
        clock = FakeClock()
        cluster = StubCluster(clock=clock)
        supervisor = ClusterSupervisor(cluster, policy=INSTANT, clock=clock)
        # Both gateways lose runtime 1; gateway 0 noticed first.
        cluster.nodes[0].links[1].detector.record_failure()
        clock.advance(0.4)
        cluster.nodes[1].links[1].detector.record_failure()
        clock.advance(1.0)

        healed = asyncio.run(supervisor.check_once())
        assert healed == [1]
        assert cluster.calls == [("crash", 1), ("restart", 1)]
        for node in cluster.nodes:
            assert node.links[1].detector.state() == "up", (
                "detectors must forget the dead incarnation's failures"
            )
        (incident,) = supervisor.incidents
        assert incident["runtime"] == 1
        # Detection is measured from the *earliest* gateway's first
        # failure — 1.4 fake seconds before the check ran.
        assert incident["detection_seconds"] == pytest.approx(1.4)
        assert incident["restarts"] == 1

    def test_already_crashed_runtime_skips_the_crash_hook(self):
        clock = FakeClock()
        cluster = StubCluster(clock=clock)
        supervisor = ClusterSupervisor(cluster, policy=INSTANT, clock=clock)
        cluster.crashed.add(0)
        cluster.nodes[0].links[0].detector.record_failure()
        clock.advance(2.0)
        assert asyncio.run(supervisor.check_once()) == [0]
        assert cluster.calls == [("restart", 0)]

    def test_repeat_offender_backs_off_and_counts_restarts(self):
        clock = FakeClock()
        cluster = StubCluster(clock=clock)
        supervisor = ClusterSupervisor(cluster, policy=INSTANT, clock=clock)

        async def two_incidents():
            for _ in range(2):
                cluster.nodes[0].links[0].detector.record_failure()
                clock.advance(2.0)
                await supervisor.check_once()

        asyncio.run(two_incidents())
        assert [i["restarts"] for i in supervisor.incidents] == [1, 2]
        assert supervisor.snapshot()["restarts"] == {0: 2}

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError, match="positive"):
            ClusterSupervisor(StubCluster(), interval_seconds=0)

    def test_snapshot_shape(self):
        supervisor = ClusterSupervisor(StubCluster())
        supervisor.tick()
        snapshot = supervisor.snapshot()
        assert snapshot["heartbeats_sent"] == 4
        assert snapshot["restarts"] == {}
        assert snapshot["healing"] == []
        assert snapshot["incidents"] == []


async def _poll(predicate, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "poll timed out"
        await asyncio.sleep(0.005)


async def _quiesce(cluster) -> None:
    await _poll(lambda: all(
        link.depth == 0 for node in cluster.nodes for link in node.links
    ))
    await _poll(lambda: all(
        len(supervisor.queue) == 0
        for index, supervisor in enumerate(cluster.supervisors)
        if not cluster.is_crashed(index)
    ))
    await asyncio.sleep(0.05)


class TestSupervisedFailover:
    def test_partition_heals_end_to_end_byte_identical(
        self, world, small_fleet, tmp_path
    ):
        """Sever one gateway→runtime ingest path mid-stream on a real
        ``chaos+tcp`` cluster; the supervisor must detect it, restart the
        runtime (whose fresh port escapes the partition), and the merged
        feed must come out byte-identical to the single-node oracle."""
        config = SystemConfig(ce_scope="vessel")
        sentences = to_sentences(small_fleet["stream"], fragment_every=40)
        oracle = offline_feed_lines(
            sentences, world, small_fleet["specs"], config=config
        )
        streams = split_round_robin(sentences, 2)
        midpoint = sentences[len(sentences) // 2][0]
        first = [[p for p in s if p[0] <= midpoint] for s in streams]
        second = [[p for p in s if p[0] > midpoint] for s in streams]

        async def pump(cluster, halves):
            async def one(gateway, half):
                session = await cluster.connect_ingest(gateway)
                try:
                    for receive_time, sentence in half:
                        await session.send(f"{receive_time}\t{sentence}")
                finally:
                    await session.close()

            await asyncio.gather(*(one(g, h) for g, h in enumerate(halves)))

        async def run():
            cluster = GatewayCluster(
                world, small_fleet["specs"], config,
                GatewayClusterConfig(
                    gateways=2, runtimes=2,
                    backend_transport="chaos+tcp",
                    wal_root=str(tmp_path),
                    link_down_seconds=0.2,
                ),
            )
            await cluster.start()
            supervisor = cluster.start_supervisor(run=False)
            ports = cluster.ports()
            try:
                await pump(cluster, first)
                await _quiesce(cluster)

                chaosnet.sever("127.0.0.1", cluster.supervisors[0].ingest.port)
                deadline = time.monotonic() + 30.0
                while not supervisor.incidents:
                    assert time.monotonic() < deadline, "heal timed out"
                    supervisor.tick()
                    await supervisor.check_once()
                    await asyncio.sleep(0.02)

                # Mid-incident vitals: the supervisor's incident log is on
                # the cluster /healthz, and the healed links are back up.
                status, body = await http_get(
                    "127.0.0.1", ports["http"], "/healthz"
                )
                assert status == 200
                health = json.loads(body)
                assert len(health["supervisor"]["incidents"]) == 1
                await pump(cluster, second)
                await cluster.drain_and_stop()
            finally:
                chaosnet.clear_partitions()
            return cluster, supervisor, health

        cluster, supervisor, health = asyncio.run(run())
        (incident,) = supervisor.incidents
        assert incident["runtime"] == 0
        assert incident["detection_seconds"] >= 0.2
        assert incident["failover_seconds"] > 0
        redials = sum(
            link.redials for node in cluster.nodes for link in node.links
        )
        assert redials > 0, "the severed links must have redialed"
        assert cluster.merged_lines == oracle
