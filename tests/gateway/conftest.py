"""Shared helpers for the gateway-cluster tests."""

import asyncio

from repro.ais.nmea import unwrap_aivdm


def fragment_groups(sentences):
    """Group ``(receive_time, sentence)`` pairs so that multi-fragment
    messages stay whole — a fragment group must ride one client
    connection or no router could keep it on one runtime."""
    groups, current = [], []
    for pair in sentences:
        parsed = unwrap_aivdm(pair[1])
        current.append(pair)
        if parsed.fragment_number == parsed.fragment_count:
            groups.append(current)
            current = []
    if current:
        groups.append(current)
    return groups


def split_round_robin(sentences, ways: int):
    """Deal a time-ordered sentence stream across ``ways`` client
    streams, fragment groups intact.  Each substream stays time-ordered,
    which is the monotonicity contract of watermarked ingest."""
    streams = [[] for _ in range(ways)]
    for index, group in enumerate(fragment_groups(sentences)):
        streams[index % ways].extend(group)
    return streams


async def feed_gateways(cluster, streams) -> None:
    """Pump one sentence stream into each gateway, concurrently."""

    async def pump(gateway: int, stream) -> None:
        session = await cluster.connect_ingest(gateway)
        try:
            for receive_time, sentence in stream:
                await session.send(f"{receive_time}\t{sentence}")
        finally:
            await session.close()

    await asyncio.gather(
        *(pump(g, stream) for g, stream in enumerate(streams))
    )


async def http_get(host: str, port: int, path: str) -> tuple[int, str]:
    """Minimal HTTP GET against the aggregator, returning (status, body)."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: x\r\n\r\n".encode("ascii"))
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, body = raw.decode("utf-8").partition("\r\n\r\n")
    status = int(head.split()[1])
    return status, body
