"""Fan-in units: barrier merge order, dedup, dormancy and reattach."""

import asyncio
import json

from repro.gateway.fanin import FeedFanIn
from repro.obs.registry import MetricsRegistry


def _line(qt, kind="slide", raw=0):
    return json.dumps({
        "type": kind,
        "query_time": qt,
        "raw_positions": raw,
        "movement_events": 0,
        "recognized": 0,
        "alerts": [],
        "critical_points": [],
    })


class ScriptedSession:
    """A TransportSession double fed from an asyncio queue."""

    def __init__(self, lines=()):
        self.queue: asyncio.Queue = asyncio.Queue()
        for item in lines:
            self.queue.put_nowait(item)
        self.closed = False

    def push(self, line) -> None:
        self.queue.put_nowait(line)

    def finish(self) -> None:
        self.queue.put_nowait(None)

    async def receive(self):
        return await self.queue.get()

    async def send(self, text: str) -> None:
        raise AssertionError("fan-in never sends")

    async def close(self) -> None:
        self.closed = True


async def _drain_loop() -> None:
    # A few scheduler round-trips so reader/merger tasks make progress.
    for _ in range(20):
        await asyncio.sleep(0)


class TestFeedFanIn:
    def test_barrier_merge_orders_by_query_time(self):
        async def run():
            lines = []
            fanin = FeedFanIn(lines.append, registry=MetricsRegistry())
            a = ScriptedSession([_line(60, raw=1), _line(120, raw=1),
                                 _line(180, "finalize")])
            b = ScriptedSession([_line(120, raw=2), _line(180, "finalize")])
            fanin.add_source("a", a)
            fanin.add_source("b", b)
            fanin.start()
            a.finish()
            b.finish()
            fanin.begin_close()
            await asyncio.wait_for(fanin.wait_closed(), 5)
            return lines

        lines = asyncio.run(run())
        payloads = [json.loads(line) for line in lines]
        assert [(p["query_time"], p["type"]) for p in payloads] == [
            (60, "slide"), (120, "slide"), (180, "finalize"),
        ]
        # The 120 line merged both sources' counters.
        assert payloads[1]["raw_positions"] == 3

    def test_slow_source_blocks_rather_than_reorders(self):
        async def run():
            lines = []
            fanin = FeedFanIn(lines.append, registry=MetricsRegistry())
            fast = ScriptedSession([_line(60), _line(120)])
            slow = ScriptedSession()
            fanin.add_source("fast", fast)
            fanin.add_source("slow", slow)
            fanin.start()
            await _drain_loop()
            held = list(lines)
            slow.push(_line(60))
            slow.push(_line(120))
            fast.finish()
            slow.finish()
            fanin.begin_close()
            await asyncio.wait_for(fanin.wait_closed(), 5)
            return held, lines

        held, lines = asyncio.run(run())
        assert held == []  # nothing emitted while one source was silent
        assert [json.loads(line)["query_time"] for line in lines] == [60, 120]

    def test_crashed_source_goes_dormant_and_reattach_resumes(self):
        async def run():
            lines = []
            registry = MetricsRegistry()
            fanin = FeedFanIn(lines.append, registry=registry)
            steady = ScriptedSession([_line(60)])
            flaky = ScriptedSession([_line(60)])
            fanin.add_source("steady", steady)
            fanin.add_source("flaky", flaky)
            fanin.start()
            await _drain_loop()
            # The flaky runtime dies mid-stream: EOF without begin_close.
            flaky.finish()
            steady.push(_line(120))
            await _drain_loop()
            down = list(fanin.down_sources)
            held = len(lines)
            # Restarted runtime reattaches, replaying its last slide.
            replacement = ScriptedSession([_line(60), _line(120)])
            fanin.add_source("flaky", replacement)
            steady.finish()
            replacement.finish()
            fanin.begin_close()
            await asyncio.wait_for(fanin.wait_closed(), 5)
            return lines, down, held, registry

        lines, down, held, registry = asyncio.run(run())
        assert down == ["flaky"]
        assert held == 1  # only the 60 line made it out pre-crash
        assert [json.loads(line)["query_time"] for line in lines] == [60, 120]
        # The replayed 60 line was recognized as a duplicate, not merged.
        assert registry.counter("gateway.fanin.duplicate_lines").value == 1
        assert registry.counter("gateway.fanin.source_losses").value == 1

    def test_bad_lines_are_counted_not_fatal(self):
        async def run():
            lines = []
            registry = MetricsRegistry()
            fanin = FeedFanIn(lines.append, registry=registry)
            source = ScriptedSession([
                "not json", json.dumps({"type": "bogus"}), _line(60),
            ])
            fanin.add_source("only", source)
            fanin.start()
            source.finish()
            fanin.begin_close()
            await asyncio.wait_for(fanin.wait_closed(), 5)
            return lines, registry

        lines, registry = asyncio.run(run())
        assert [json.loads(line)["query_time"] for line in lines] == [60]
        assert registry.counter("gateway.fanin.bad_lines").value == 2
