"""Routing units: MMSI sharding and fragment-group affinity."""

import pytest

from repro.ais import PositionReport, encode_position_report
from repro.ais.nmea import wrap_aivdm, wrap_aivdm_fragments
from repro.gateway.routing import (
    PENDING_FRAGMENT_CAPACITY,
    SentenceRouter,
    mmsi_of_payload,
    shard_for_mmsi,
)
from repro.obs.registry import MetricsRegistry


def _sentence(mmsi: int, message_type: int = 1):
    payload, fill = encode_position_report(PositionReport(
        message_type=message_type,
        mmsi=mmsi,
        lon=23.5,
        lat=37.9,
        speed_knots=10.0,
        course_degrees=90.0,
        second_of_minute=0,
    ))
    return payload, fill


class TestShardForMmsi:
    def test_deterministic_and_in_range(self):
        for mmsi in (0, 1, 111111111, 999999999):
            for shards in (1, 2, 4, 7):
                index = shard_for_mmsi(mmsi, shards)
                assert index == shard_for_mmsi(mmsi, shards)
                assert 0 <= index < shards

    def test_spreads_consecutive_mmsis(self):
        # A fleet numbered in a block must not all land on one runtime.
        indices = {shard_for_mmsi(237000000 + i, 4) for i in range(16)}
        assert len(indices) == 4


class TestMmsiOfPayload:
    def test_extracts_the_encoded_mmsi(self):
        payload, fill = _sentence(237006500)
        assert mmsi_of_payload(payload, fill) == 237006500

    def test_truncated_payload_is_none(self):
        assert mmsi_of_payload("1", 0) is None

    def test_invalid_armor_is_none(self):
        assert mmsi_of_payload("\x7f\x7f\x7f\x7f\x7f\x7f\x7f", 0) is None


class TestSentenceRouter:
    def setup_method(self):
        self.registry = MetricsRegistry()
        self.router = SentenceRouter(4, self.registry)

    def test_routes_by_mmsi(self):
        payload, fill = _sentence(237006500)
        sentence = wrap_aivdm(payload, fill)
        assert self.router.route(sentence) == shard_for_mmsi(237006500, 4)

    def test_fragments_follow_their_first_fragment(self):
        payload, fill = _sentence(237006500, message_type=19)
        first, second = wrap_aivdm_fragments(payload, fill, message_id=3)
        expected = shard_for_mmsi(237006500, 4)
        assert self.router.route(first) == expected
        assert self.router.route(second) == expected
        # The final fragment retires the group.
        assert not self.router._pending

    def test_orphan_fragment_goes_to_runtime_zero_counted(self):
        payload, fill = _sentence(237006500, message_type=19)
        _, second = wrap_aivdm_fragments(payload, fill, message_id=9)
        assert self.router.route(second) == 0
        assert self.registry.counter("gateway.route.unroutable").value == 1
        assert (
            self.registry.counter(
                "gateway.route.unroutable.orphan_fragment"
            ).value == 1
        )

    def test_unparseable_sentence_goes_to_runtime_zero_counted(self):
        assert self.router.route("!AIVDM,garbage*00") == 0
        assert self.registry.counter("gateway.route.unroutable").value == 1

    def test_abandoned_fragment_groups_are_evicted_counted(self):
        payload, fill = _sentence(237006500, message_type=19)
        for message_id in range(PENDING_FRAGMENT_CAPACITY + 8):
            first, _ = wrap_aivdm_fragments(
                payload, fill, message_id=message_id
            )
            self.router.route(first)
        assert len(self.router._pending) <= PENDING_FRAGMENT_CAPACITY
        assert (
            self.registry.counter(
                "gateway.route.fragment_groups_dropped"
            ).value == 8
        )

    def test_rejects_zero_backends(self):
        with pytest.raises(ValueError):
            SentenceRouter(0, self.registry)
