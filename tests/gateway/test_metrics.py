"""Metrics federation: per-node sections plus an honest cluster sum."""

import re

from repro.gateway.metrics import federate_prometheus
from repro.obs.registry import MetricsRegistry

#: Prometheus 0.0.4 text exposition: comments or `name{labels} value`.
_EXPOSITION_LINE = re.compile(
    r"^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*"
    r"|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+)$"
)


def _registries():
    gw0 = MetricsRegistry()
    gw0.inc("gateway.ingest.lines", 10)
    gw0.set_gauge("gateway.link.depth", 3)
    gw0.observe("gateway.ingest.latency_seconds", 0.01)
    gw1 = MetricsRegistry()
    gw1.inc("gateway.ingest.lines", 5)
    gw1.set_gauge("gateway.link.depth", 2)
    gw1.observe("gateway.ingest.latency_seconds", 0.02)
    return {"gw0": gw0, "gw1": gw1}


class TestFederatePrometheus:
    def test_every_line_is_valid_exposition(self):
        text = federate_prometheus(_registries())
        for line in text.splitlines():
            if not line:
                continue
            assert _EXPOSITION_LINE.match(line), f"invalid line: {line!r}"

    def test_per_node_sections_and_cluster_sum(self):
        text = federate_prometheus(_registries())
        assert "repro_node_gw0_gateway_ingest_lines_total 10" in text
        assert "repro_node_gw1_gateway_ingest_lines_total 5" in text
        assert "repro_cluster_gateway_ingest_lines_total 15" in text
        # Gauges sum too (total queued across the cluster).
        assert "repro_cluster_gateway_link_depth 5" in text

    def test_quantiles_stay_per_node_only(self):
        # Quantile summaries do not aggregate; the cluster section must
        # not pretend they do.
        text = federate_prometheus(_registries())
        assert 'repro_node_gw0_gateway_ingest_latency_seconds{quantile' in text
        assert 'repro_cluster_gateway_ingest_latency_seconds{' not in text

    def test_node_names_are_sanitized(self):
        registry = MetricsRegistry()
        registry.inc("x")
        text = federate_prometheus({"gw-0.east": registry})
        assert "repro_node_gw_0_east_x_total 1" in text

    def test_deterministic_ordering(self):
        assert federate_prometheus(_registries()) == federate_prometheus(
            _registries()
        )
