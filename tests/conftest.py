"""Shared fixtures for the test suite."""

import pytest

from repro.simulator import FleetSimulator, build_aegean_world
from repro.tracking import TrackingParameters


@pytest.fixture(scope="session")
def world():
    """The default Aegean-like world (10 ports, 35 areas)."""
    return build_aegean_world()


@pytest.fixture(scope="session")
def small_fleet(world):
    """A small deterministic mixed fleet with its merged stream."""
    simulator = FleetSimulator(world, seed=99, duration_seconds=4 * 3600)
    fleet = simulator.build_mixed_fleet(12)
    return {
        "simulator": simulator,
        "fleet": fleet,
        "specs": {vessel.mmsi: vessel.spec for vessel in fleet},
        "stream": simulator.positions(fleet),
    }


@pytest.fixture()
def params():
    """Default Table 3 tracking parameters."""
    return TrackingParameters()
