"""Per-rule behavior on the fixture tree and on targeted snippets."""

from pathlib import Path

from repro.analysis import run_analysis

FIXTURES = Path(__file__).parent / "fixtures"


def findings(paths, select):
    return run_analysis(paths, select=[select]).diagnostics


class TestRPR001Wallclock:
    def test_flags_aliased_time_datetime_and_global_random(self):
        target = FIXTURES / "repro" / "tracking" / "bad_wallclock.py"
        lines = [d.line for d in findings([target], "RPR001")]
        assert lines == [14, 18, 22]

    def test_perf_counter_and_seeded_random_allowed(self):
        # allowed_paths() (lines 25-29) uses perf_counter and a seeded
        # Random — neither may produce a finding.
        target = FIXTURES / "repro" / "tracking" / "bad_wallclock.py"
        assert all(d.line < 25 for d in findings([target], "RPR001"))

    def test_out_of_scope_module_ignored(self, tmp_path):
        # Same code under repro.simulator (wall-clock is fine there).
        pkg = tmp_path / "repro" / "simulator"
        pkg.mkdir(parents=True)
        target = pkg / "clocky.py"
        target.write_text("import time\n\ndef f():\n    return time.time()\n")
        assert findings([target], "RPR001") == []


class TestRPR002AsyncBlocking:
    def test_flags_blocking_calls_in_async_defs_only(self):
        target = FIXTURES / "repro" / "service" / "bad_async.py"
        results = findings([target], "RPR002")
        assert [d.line for d in results] == [8, 12, 17]
        names = " ".join(d.message for d in results)
        assert "sync_helper" not in names  # sync function is fine

    def test_scope_is_repro_service(self, tmp_path):
        pkg = tmp_path / "repro" / "tracking"
        pkg.mkdir(parents=True)
        target = pkg / "async_elsewhere.py"
        target.write_text(
            "import time\n\nasync def f():\n    time.sleep(1)\n"
        )
        assert findings([target], "RPR002") == []


class TestRPR003FaultSites:
    def test_unknown_and_orphan_sites_reported(self):
        results = findings([FIXTURES], "RPR003")
        messages = [d.message for d in results]
        assert len(results) == 2
        assert any("demo.unknown" in m for m in messages)
        assert any("demo.orphan" in m for m in messages)

    def test_directions_skipped_without_registry_module(self):
        # Scanning only the call-site file: the registry was never seen,
        # so the unknown-site direction must be skipped, not guessed.
        target = FIXTURES / "repro" / "service" / "bad_faults.py"
        assert findings([target], "RPR003") == []

    def test_unseeded_entry_must_name_a_declared_site(self, tmp_path):
        # An UNSEEDED_SITES exclusion for a site nobody declared filters
        # nothing — usually a typo or a renamed site left behind.
        pkg = tmp_path / "repro" / "resilience"
        pkg.mkdir(parents=True)
        target = pkg / "faults.py"
        target.write_text(
            'SITES = {"demo.site": ("error",)}\n'
            'UNSEEDED_SITES = frozenset({"demo.site", "demo.gone"})\n'
            "\n"
            "def fault_point(site):\n"
            "    return None\n"
            "\n"
            "def used():\n"
            '    return fault_point("demo.site")\n'
        )
        results = findings([target], "RPR003")
        messages = [d.message for d in results]
        assert len(results) == 1
        assert "demo.gone" in messages[0]
        assert "filters nothing" in messages[0]

    def test_real_tree_is_consistent(self):
        assert findings(["src"], "RPR003") == []


class TestRPR004SilentDrop:
    def test_flags_sheds_and_uncounted_get_nowait(self):
        target = FIXTURES / "repro" / "service" / "bad_drop.py"
        results = findings([target], "RPR004")
        assert [d.line for d in results] == [8, 12]
        assert "evict_counted" not in " ".join(d.message for d in results)

    def test_tracking_package_out_of_scope(self, tmp_path):
        pkg = tmp_path / "repro" / "tracking"
        pkg.mkdir(parents=True)
        target = pkg / "window.py"
        target.write_text("def evict_expired(w):\n    w.pop()\n")
        assert findings([target], "RPR004") == []


class TestRPR005OrderedMerge:
    def test_flags_views_set_literals_and_constructors(self):
        target = FIXTURES / "repro" / "runtime" / "bad_merge.py"
        results = findings([target], "RPR005")
        assert [d.line for d in results] == [6, 8, 10]

    def test_sorted_wrapper_escapes(self):
        target = FIXTURES / "repro" / "runtime" / "bad_merge.py"
        # merge_ordered iterates sorted(...) — no finding on line 16.
        assert all(d.line != 16 for d in findings([target], "RPR005"))

    def test_scope_is_repro_runtime(self, tmp_path):
        pkg = tmp_path / "repro" / "service"
        pkg.mkdir(parents=True)
        target = pkg / "free_iteration.py"
        target.write_text("def f(d):\n    return [k for k in d.items()]\n")
        assert findings([target], "RPR005") == []


class TestWholeTree:
    def test_src_is_clean(self):
        result = run_analysis(["src"])
        assert result.diagnostics == []

    def test_tests_are_clean(self):
        result = run_analysis(["tests"])
        assert result.diagnostics == []
