"""The documentation linter: coverage and link integrity, plus the CI
contract that the real repo stays clean."""

from pathlib import Path

import pytest

from repro.analysis.doclint import main, module_mentions, run_doclint

REPO_ROOT = Path(__file__).resolve().parents[2]


def _make_repo(tmp_path, doc_text):
    (tmp_path / "src" / "repro" / "pkg").mkdir(parents=True)
    (tmp_path / "src" / "repro" / "pkg" / "__init__.py").write_text("")
    (tmp_path / "src" / "repro" / "pkg" / "mod.py").write_text("x = 1\n")
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "GUIDE.md").write_text(doc_text)
    return tmp_path


def test_clean_when_module_mentioned_by_dotted_name(tmp_path):
    root = _make_repo(tmp_path, "The `repro.pkg.mod` module does x.\n")
    assert run_doclint(root) == []


def test_clean_when_module_mentioned_by_path(tmp_path):
    root = _make_repo(tmp_path, "See `pkg/mod.py` for x.\n")
    assert run_doclint(root) == []


def test_unmentioned_module_is_doc001(tmp_path):
    root = _make_repo(tmp_path, "Nothing to see here.\n")
    findings = run_doclint(root)
    assert [f.rule for f in findings] == ["DOC001"]
    assert "repro.pkg.mod" in findings[0].message
    assert findings[0].path == "src/repro/pkg/mod.py"


def test_init_and_main_are_exempt(tmp_path):
    root = _make_repo(tmp_path, "`repro.pkg.mod` exists.\n")
    (root / "src" / "repro" / "pkg" / "__main__.py").write_text("")
    assert run_doclint(root) == []


def test_broken_relative_link_is_doc002(tmp_path):
    root = _make_repo(
        tmp_path,
        "`repro.pkg.mod`.\nSee [missing](MISSING.md) and [ok](GUIDE.md).\n",
    )
    findings = run_doclint(root)
    assert [f.rule for f in findings] == ["DOC002"]
    assert findings[0].line == 2
    assert "MISSING.md" in findings[0].message


def test_external_links_and_anchors_are_skipped(tmp_path):
    root = _make_repo(
        tmp_path,
        "`repro.pkg.mod`.\n"
        "[web](https://example.org/x) [mail](mailto:a@b.c) [top](#heading)\n"
        "[anchored](GUIDE.md#section)\n",
    )
    assert run_doclint(root) == []


def test_readme_links_are_checked(tmp_path):
    root = _make_repo(tmp_path, "`repro.pkg.mod`.\n")
    (root / "README.md").write_text("[docs](docs/GUIDE.md) [bad](nope.md)\n")
    findings = run_doclint(root)
    assert [(f.rule, f.path) for f in findings] == [("DOC002", "README.md")]


def test_module_mentions_forms(tmp_path):
    root = _make_repo(tmp_path, "")
    dotted, as_path = module_mentions(
        root / "src" / "repro" / "pkg" / "mod.py", root
    )
    assert dotted == "repro.pkg.mod"
    assert as_path == "pkg/mod.py"


def test_missing_docs_dir_is_usage_error(tmp_path):
    with pytest.raises(FileNotFoundError):
        run_doclint(tmp_path)
    assert main([str(tmp_path)]) == 2


def test_cli_exit_codes(tmp_path, capsys):
    clean = _make_repo(tmp_path / "clean", "`repro.pkg.mod`.\n")
    assert main([str(clean)]) == 0
    assert "no issues found" in capsys.readouterr().out
    dirty = _make_repo(tmp_path / "dirty", "nothing\n")
    assert main([str(dirty)]) == 1
    out = capsys.readouterr().out
    assert "DOC001" in out and "1 issue found" in out


def test_real_repo_is_clean():
    """The contract CI enforces: this repository documents itself."""
    assert run_doclint(REPO_ROOT) == []
