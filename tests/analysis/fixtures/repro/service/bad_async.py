"""RPR002 fixture: blocking calls inside ``async def`` in repro.service."""

import sqlite3
import time


async def blocking_sleep():
    time.sleep(0.1)  # RPR002: blocks the event loop


async def blocking_io():
    with open("somefile") as handle:  # RPR002: sync file I/O
        return handle.read()


async def blocking_db():
    return sqlite3.connect(":memory:")  # RPR002: sync sqlite


async def fine():
    import asyncio

    await asyncio.sleep(0)  # allowed: async primitive


def sync_helper():
    time.sleep(0.1)  # allowed: not inside async def
