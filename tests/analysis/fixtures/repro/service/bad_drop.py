"""RPR004 fixture: shedding without counting, in a queueing package."""


class LossyQueue:
    def __init__(self):
        self.items = []

    def shed_oldest(self):  # RPR004: named shed, no counter
        if self.items:
            self.items.pop(0)

    def drain(self, queue):  # RPR004: get_nowait without counter
        drained = []
        while True:
            try:
                drained.append(queue.get_nowait())
            except Exception:
                break
        return drained

    def evict_counted(self, obs):  # fine: counts what it drops
        self.items.clear()
        obs.count("demo.evicted")
