"""RPR003 fixture call site: fires an undeclared fault site."""

from repro.resilience.faults import fault_point


def risky_path():
    spec = fault_point("demo.unknown")  # RPR003: not in SITES
    return spec
