"""Suppression fixture: a real RPR005 finding silenced on its line."""


def count_members(mapping: dict):
    total = 0
    for value in mapping.values():  # repro: allow[RPR005] pure sum, order-free
        total += value
    return total


def unsuppressed(mapping: dict):
    for value in mapping.values():  # RPR005: no allow comment here
        return value
