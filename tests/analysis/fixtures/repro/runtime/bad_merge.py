"""RPR005 fixture: unordered iteration in shard-merge code."""


def merge(shard_outputs: dict):
    merged = []
    for shard, lines in shard_outputs.items():  # RPR005: bare .items()
        merged.extend(lines)
    for line in {tuple(line) for line in merged}:  # RPR005: set comp
        pass
    unique = [x for x in set(merged)]  # RPR005: bare set(...)
    return merged, unique


def merge_ordered(shard_outputs: dict):
    merged = []
    for shard, lines in sorted(shard_outputs.items()):  # fine: sorted
        merged.extend(lines)
    return merged
