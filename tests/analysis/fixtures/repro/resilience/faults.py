"""RPR003 fixture registry: masquerades as ``repro.resilience.faults``.

``demo.site`` is declared and referenced (fine); ``demo.orphan`` is
declared but never referenced (orphan finding); ``demo.unknown`` is
referenced from bad_faults.py but not declared (unknown finding).
"""

SITES: dict[str, tuple[str, ...]] = {
    "demo.site": ("error",),
    "demo.orphan": ("delay",),
}


def fault_point(site: str):
    return None


def used_site():
    return fault_point("demo.site")
