"""RPR001 fixture: wall-clock and unseeded randomness in a deterministic path.

This file masquerades as ``repro.tracking.bad_wallclock`` (the module
name is anchored at the ``repro`` path component), so every banned call
below must be reported by RPR001.
"""

import random
import time as clock
from datetime import datetime


def stamp_now():
    return clock.time()  # RPR001: aliased time.time()


def stamp_datetime():
    return datetime.now()  # RPR001: wall-clock datetime


def jitter():
    return random.random()  # RPR001: module-level RNG


def allowed_paths():
    # perf_counter is timing-only and seeded Random is deterministic:
    # neither may be flagged.
    rng = random.Random(2015)
    return clock.perf_counter(), rng.random()
