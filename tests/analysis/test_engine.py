"""Engine plumbing: module naming, discovery, suppression, self-metrics."""

from pathlib import Path

import pytest

from repro import obs
from repro.analysis import module_name_for, run_analysis
from repro.analysis.engine import PARSE_ERROR_CODE, discover_files
from repro.analysis.suppressions import suppressed_lines

FIXTURES = Path(__file__).parent / "fixtures"


class TestModuleNameInference:
    def test_src_layout_anchors_at_repro(self):
        assert module_name_for(
            Path("src/repro/geo/units.py")
        ) == "repro.geo.units"

    def test_fixture_trees_masquerade_as_repro(self):
        path = Path("tests/analysis/fixtures/repro/tracking/bad.py")
        assert module_name_for(path) == "repro.tracking.bad"

    def test_init_maps_to_package(self):
        assert module_name_for(Path("src/repro/obs/__init__.py")) == "repro.obs"

    def test_unanchored_path_falls_back_to_stem(self):
        assert module_name_for(Path("scripts/tool.py")) == "tool"

    def test_last_anchor_wins(self):
        path = Path("tests/analysis/fixtures/repro/runtime/bad_merge.py")
        assert module_name_for(path) == "repro.runtime.bad_merge"


class TestDiscovery:
    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            discover_files(["does/not/exist"])

    def test_fixture_dirs_pruned_below_a_root(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "real.py").write_text("x = 1\n")
        nested = tmp_path / "pkg" / "fixtures"
        nested.mkdir()
        (nested / "bad.py").write_text("x = 2\n")
        found = discover_files([tmp_path])
        assert [p.name for p in found] == ["real.py"]

    def test_fixture_root_itself_is_scanned(self):
        found = discover_files([FIXTURES])
        assert any(p.name == "bad_wallclock.py" for p in found)

    def test_explicit_file_always_scanned(self):
        target = FIXTURES / "repro" / "runtime" / "bad_merge.py"
        assert discover_files([target]) == [target]

    def test_pycache_pruned(self, tmp_path):
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "junk.py").write_text("x = 1\n")
        assert discover_files([tmp_path]) == []


class TestSuppressionComments:
    def test_single_code(self):
        allowed = suppressed_lines("x = 1  # repro: allow[RPR005]\n")
        assert allowed == {1: {"RPR005"}}

    def test_comma_separated_codes(self):
        allowed = suppressed_lines("x = 1  # repro: allow[RPR001, RPR004]\n")
        assert allowed == {1: {"RPR001", "RPR004"}}

    def test_line_scoped_only(self):
        source = "# repro: allow[RPR005]\nx = 1\n"
        allowed = suppressed_lines(source)
        assert 1 in allowed and 2 not in allowed

    def test_suppression_reduces_findings_and_is_counted(self):
        target = FIXTURES / "repro" / "runtime" / "suppressed.py"
        result = run_analysis([target], select=["RPR005"])
        assert result.suppressed == 1
        assert len(result.diagnostics) == 1
        assert result.diagnostics[0].line == 12


class TestParseErrors:
    def test_syntax_error_becomes_rpr000(self, tmp_path):
        bad = tmp_path / "repro"
        bad.mkdir()
        target = bad / "broken.py"
        target.write_text("def broken(:\n")
        result = run_analysis([target])
        assert result.parse_errors == 1
        assert result.diagnostics[0].rule == PARSE_ERROR_CODE


class TestSelfMetrics:
    def test_run_records_obs_counters(self):
        with obs.activate(obs.MetricsRegistry()) as registry:
            result = run_analysis([FIXTURES])
            files = registry.counter("analysis.files").value
            diags = registry.counter("analysis.diagnostics").value
            run_seconds = registry._histograms["analysis.run_seconds"]
        assert files == result.files > 0
        assert diags == len(result.diagnostics) > 0
        assert run_seconds.count == 1
        assert result.elapsed_seconds > 0
        assert result.files_per_sec > 0
        for code, seconds in result.rule_seconds.items():
            assert seconds >= 0.0, code

    def test_stats_layout(self):
        result = run_analysis([FIXTURES], select=["RPR001"])
        stats = result.stats()
        assert set(stats) == {
            "files", "diagnostics", "suppressed", "parse_errors",
            "elapsed_seconds", "files_per_sec", "rule_seconds",
        }
        assert list(stats["rule_seconds"]) == ["RPR001"]
