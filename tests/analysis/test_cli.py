"""CLI contract: exit codes, JSON schema, --select/--ignore, --list-rules."""

import json
from pathlib import Path

from repro.analysis.cli import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE, main
from repro.analysis.diagnostics import JSON_SCHEMA
from repro.analysis.registry import rule_codes

FIXTURES = str(Path(__file__).parent / "fixtures")
CLEAN_FILE = str(Path("src/repro/geo/units.py"))


class TestExitCodes:
    def test_clean_scan_exits_zero(self, capsys):
        assert main([CLEAN_FILE]) == EXIT_CLEAN
        assert "no issues found" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        assert main([FIXTURES]) == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "issues found" in out

    def test_unknown_rule_code_exits_two(self, capsys):
        assert main(["--select", "RPR999", CLEAN_FILE]) == EXIT_USAGE
        assert "unknown rule code" in capsys.readouterr().err

    def test_missing_path_exits_two(self, capsys):
        assert main(["no/such/dir"]) == EXIT_USAGE
        assert "no such path" in capsys.readouterr().err


class TestSelectIgnore:
    def test_select_restricts_rules(self, capsys):
        assert main(["--select", "RPR001", FIXTURES]) == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "RPR001" in out
        assert "RPR005" not in out

    def test_ignore_removes_rules(self, capsys):
        code = main(
            ["--ignore", "RPR001,RPR002,RPR003,RPR004,RPR005", FIXTURES]
        )
        assert code == EXIT_CLEAN
        capsys.readouterr()

    def test_repeatable_and_comma_separated(self, capsys):
        assert main(
            ["--select", "RPR004", "--select", "RPR005", FIXTURES]
        ) == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "RPR004" in out and "RPR005" in out and "RPR001" not in out


class TestJsonOutput:
    def test_schema_and_shape(self, capsys):
        assert main(["--format", "json", FIXTURES]) == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == JSON_SCHEMA
        assert set(payload) == {"schema", "diagnostics", "stats"}
        first = payload["diagnostics"][0]
        assert set(first) == {"path", "line", "col", "rule", "message"}
        stats = payload["stats"]
        assert stats["diagnostics"] == len(payload["diagnostics"])
        assert stats["files"] > 0
        assert "rule_seconds" in stats

    def test_diagnostics_sorted_by_location(self, capsys):
        main(["--format", "json", FIXTURES])
        payload = json.loads(capsys.readouterr().out)
        keys = [
            (d["path"], d["line"], d["col"]) for d in payload["diagnostics"]
        ]
        assert keys == sorted(keys)

    def test_clean_json_still_has_stats(self, capsys):
        assert main(["--format", "json", CLEAN_FILE]) == EXIT_CLEAN
        payload = json.loads(capsys.readouterr().out)
        assert payload["diagnostics"] == []
        assert payload["stats"]["files"] == 1


class TestListRules:
    def test_catalog_lists_every_code(self, capsys):
        assert main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for code in rule_codes():
            assert code in out
