"""Golden test: the fixture tree triggers every rule, exactly as recorded.

The fixture files under ``fixtures/repro`` are adversarial samples, one
per rule; this test pins the complete (rule, file, line) finding set so
any rule regression — a check that stops firing, fires twice, or moves —
shows up as a diff against the golden list, not as silent drift.
"""

from pathlib import Path

from repro.analysis import run_analysis
from repro.analysis.registry import rule_codes

FIXTURES = Path(__file__).parent / "fixtures"

#: The complete expected finding set: (rule, path-relative-to-fixtures, line).
GOLDEN = [
    ("RPR001", "repro/tracking/bad_wallclock.py", 14),
    ("RPR001", "repro/tracking/bad_wallclock.py", 18),
    ("RPR001", "repro/tracking/bad_wallclock.py", 22),
    ("RPR002", "repro/service/bad_async.py", 8),
    ("RPR002", "repro/service/bad_async.py", 12),
    ("RPR002", "repro/service/bad_async.py", 17),
    ("RPR003", "repro/resilience/faults.py", 10),
    ("RPR003", "repro/service/bad_faults.py", 7),
    ("RPR004", "repro/service/bad_drop.py", 8),
    ("RPR004", "repro/service/bad_drop.py", 12),
    ("RPR005", "repro/runtime/bad_merge.py", 6),
    ("RPR005", "repro/runtime/bad_merge.py", 8),
    ("RPR005", "repro/runtime/bad_merge.py", 10),
    ("RPR005", "repro/runtime/suppressed.py", 12),
]


def _relative(diagnostic):
    return str(Path(diagnostic.path).relative_to(FIXTURES))


class TestGoldenFindings:
    def test_fixture_tree_matches_golden_list(self):
        result = run_analysis([FIXTURES])
        actual = sorted(
            (d.rule, _relative(d), d.line) for d in result.diagnostics
        )
        assert actual == sorted(GOLDEN)

    def test_every_rule_fires_at_least_once(self):
        fired = {rule for rule, _, _ in GOLDEN}
        assert fired == set(rule_codes())

    def test_one_suppressed_finding(self):
        result = run_analysis([FIXTURES])
        assert result.suppressed == 1
