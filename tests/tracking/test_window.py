"""Tests for the sliding window operator."""

import pytest
from hypothesis import given, strategies as st

from repro.tracking.types import CriticalPoint, MovementEventType
from repro.tracking.window import SlidingWindow, WindowSpec


def make_point(mmsi, timestamp):
    return CriticalPoint(
        mmsi=mmsi,
        lon=24.0,
        lat=38.0,
        timestamp=timestamp,
        annotations=frozenset({MovementEventType.TURN}),
    )


class TestWindowSpec:
    def test_of_minutes(self):
        spec = WindowSpec.of_minutes(60, 5)
        assert spec.range_seconds == 3600
        assert spec.slide_seconds == 300

    def test_of_hours(self):
        spec = WindowSpec.of_hours(2, 0.5)
        assert spec.range_seconds == 7200
        assert spec.slide_seconds == 1800

    def test_invalid_range(self):
        with pytest.raises(ValueError, match="range must be positive"):
            WindowSpec(0, 10)

    def test_invalid_slide(self):
        with pytest.raises(ValueError, match="slide must be positive"):
            WindowSpec(10, 0)


class TestSlidingWindow:
    def test_items_within_range_retained(self):
        window = SlidingWindow(WindowSpec(100, 10))
        window.add([make_point(1, 50), make_point(1, 90)])
        expired = window.slide_to(100)
        assert expired == []
        assert len(window) == 2

    def test_expired_items_returned(self):
        window = SlidingWindow(WindowSpec(100, 10))
        window.add([make_point(1, 50), make_point(1, 150)])
        expired = window.slide_to(200)
        # Horizon is 200 - 100 = 100: the t=50 item expires (t <= horizon).
        assert [p.timestamp for p in expired] == [50]
        assert [p.timestamp for p in window.contents(1)] == [150]

    def test_boundary_item_expires(self):
        window = SlidingWindow(WindowSpec(100, 10))
        window.add([make_point(1, 100)])
        expired = window.slide_to(200)
        assert len(expired) == 1

    def test_empty_vessels_removed(self):
        window = SlidingWindow(WindowSpec(100, 10))
        window.add([make_point(1, 10), make_point(2, 190)])
        window.slide_to(200)
        assert window.vessel_keys() == [2]

    def test_contents_per_vessel_and_fleet(self):
        window = SlidingWindow(WindowSpec(1000, 10))
        window.add([make_point(1, 10), make_point(2, 20), make_point(1, 30)])
        assert len(window.contents(1)) == 2
        assert len(window.contents()) == 3
        assert window.contents(99) == []

    def test_query_time_recorded(self):
        window = SlidingWindow(WindowSpec(100, 10))
        assert window.query_time is None
        window.slide_to(500)
        assert window.query_time == 500

    @given(
        timestamps=st.lists(
            st.integers(min_value=0, max_value=10_000), min_size=1, max_size=100
        ),
        window_range=st.integers(min_value=1, max_value=2_000),
    )
    def test_retained_plus_expired_equals_added(self, timestamps, window_range):
        window = SlidingWindow(WindowSpec(window_range, 10))
        points = [make_point(1, t) for t in sorted(timestamps)]
        window.add(points)
        query_time = max(timestamps) + 1
        expired = window.slide_to(query_time)
        retained = window.contents()
        assert len(expired) + len(retained) == len(points)
        horizon = query_time - window_range
        assert all(p.timestamp <= horizon for p in expired)
        assert all(p.timestamp > horizon for p in retained)
