"""Tests for the traveled-distance feature (Section 3.1 extension)."""

import pytest

from repro.ais.stream import PositionalTuple
from repro.geo.units import knots_to_mps
from repro.tracking import MobilityTracker
from tests.tracking.helpers import TraceBuilder


class TestTraveledDistance:
    def test_unknown_vessel_is_zero(self):
        assert MobilityTracker().traveled_distance_meters(42) == 0.0

    def test_single_report_is_zero(self):
        tracker = MobilityTracker()
        tracker.process(PositionalTuple(1, 24.0, 38.0, 0))
        assert tracker.traveled_distance_meters(1) == 0.0

    def test_straight_cruise_matches_speed_times_time(self):
        tracker = MobilityTracker()
        # 10 knots for 30 minutes = ~9.26 km.
        tracker.process_batch(TraceBuilder().cruise(90.0, 10.0, 30).build())
        expected = knots_to_mps(10.0) * 30 * 60
        assert tracker.traveled_distance_meters(1) == pytest.approx(
            expected, rel=0.01
        )

    def test_outliers_do_not_inflate_distance(self):
        clean = MobilityTracker()
        clean.process_batch(TraceBuilder().cruise(90.0, 10.0, 20).build())
        noisy = MobilityTracker()
        noisy.process_batch(
            TraceBuilder()
            .cruise(90.0, 10.0, 10)
            .jump(0.0, 3000.0, interval=30)
            .cruise(90.0, 10.0, 10)
            .build()
        )
        # The 3 km jump is discarded; distances agree within a few percent.
        assert noisy.traveled_distance_meters(1) == pytest.approx(
            clean.traveled_distance_meters(1), rel=0.05
        )

    def test_gap_contributes_straight_line_lower_bound(self):
        tracker = MobilityTracker()
        trace = (
            TraceBuilder()
            .cruise(90.0, 10.0, 5)
            .silence(1200)
            .cruise(90.0, 10.0, 5)
            .build()
        )
        tracker.process_batch(trace)
        # The silence kept the vessel in place here, so total distance is
        # just the two cruise segments.
        expected = knots_to_mps(10.0) * 10 * 60
        assert tracker.traveled_distance_meters(1) == pytest.approx(
            expected, rel=0.02
        )

    def test_per_vessel_isolation(self):
        tracker = MobilityTracker()
        tracker.process_batch(TraceBuilder(mmsi=1).cruise(90.0, 10.0, 10).build())
        tracker.process_batch(TraceBuilder(mmsi=2).cruise(90.0, 20.0, 10).build())
        assert tracker.traveled_distance_meters(2) == pytest.approx(
            2 * tracker.traveled_distance_meters(1), rel=0.01
        )
