"""Tests for the Table 3 tracking parameters."""

import pytest

from repro.geo.units import knots_to_mps
from repro.tracking import TrackingParameters


class TestDefaults:
    def test_table3_defaults(self):
        params = TrackingParameters()
        assert params.min_speed_knots == 1.0
        assert params.speed_change_percent == 25.0
        assert params.gap_period_seconds == 600
        assert params.turn_threshold_degrees == 15.0
        assert params.stop_radius_meters == 200.0
        assert params.inspected_positions == 10

    def test_derived_speeds(self):
        params = TrackingParameters()
        assert params.min_speed_mps == pytest.approx(knots_to_mps(1.0))
        assert params.slow_speed_mps == pytest.approx(knots_to_mps(5.0))
        assert params.outlier_min_speed_mps == pytest.approx(knots_to_mps(20.0))

    def test_frozen(self):
        params = TrackingParameters()
        with pytest.raises(AttributeError):
            params.min_speed_knots = 2.0


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"min_speed_knots": 0.0}, "min_speed_knots"),
            ({"min_speed_knots": -1.0}, "min_speed_knots"),
            ({"speed_change_percent": 0.0}, "speed_change_percent"),
            ({"gap_period_seconds": 0}, "gap_period_seconds"),
            ({"turn_threshold_degrees": 0.0}, "turn_threshold_degrees"),
            ({"turn_threshold_degrees": 181.0}, "turn_threshold_degrees"),
            ({"stop_radius_meters": 0.0}, "stop_radius_meters"),
            ({"inspected_positions": 1}, "inspected_positions"),
        ],
    )
    def test_rejects_invalid(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            TrackingParameters(**kwargs)

    def test_valid_sweep_values_accepted(self):
        # The Delta-theta sweep of Figures 8/9.
        for degrees in (5.0, 10.0, 15.0, 20.0):
            TrackingParameters(turn_threshold_degrees=degrees)
