"""Tests for instantaneous trajectory events (Section 3.1, Figure 2)."""

import pytest

from repro.ais.stream import PositionalTuple
from repro.tracking import MobilityTracker, MovementEventType, TrackingParameters
from tests.tracking.helpers import TraceBuilder


def events_of(events, kind):
    return [e for e in events if e.event_type is kind]


class TestBasics:
    def test_first_position_produces_no_events(self):
        tracker = MobilityTracker()
        assert tracker.process(PositionalTuple(1, 24.0, 38.0, 0)) == []
        assert tracker.vessel_count() == 1

    def test_duplicate_timestamp_ignored(self):
        tracker = MobilityTracker()
        tracker.process(PositionalTuple(1, 24.0, 38.0, 0))
        tracker.process(PositionalTuple(1, 24.0, 38.0, 60))
        assert tracker.process(PositionalTuple(1, 24.1, 38.0, 60)) == []
        assert tracker.statistics.positions_out_of_sequence == 1

    def test_out_of_order_timestamp_ignored(self):
        tracker = MobilityTracker()
        tracker.process(PositionalTuple(1, 24.0, 38.0, 100))
        assert tracker.process(PositionalTuple(1, 24.1, 38.0, 50)) == []
        assert tracker.statistics.positions_out_of_sequence == 1

    def test_vessels_tracked_independently(self):
        tracker = MobilityTracker()
        tracker.process(PositionalTuple(1, 24.0, 38.0, 0))
        tracker.process(PositionalTuple(2, 25.0, 38.0, 0))
        assert tracker.vessel_count() == 2
        # Vessel 2's first transition does not see vessel 1's state.
        events = tracker.process(PositionalTuple(2, 25.0, 38.001, 60))
        assert all(e.mmsi == 2 for e in events)

    def test_velocity_vector_maintained(self):
        tracker = MobilityTracker()
        trace = TraceBuilder().cruise(90.0, 10.0, 3).build()
        tracker.process_batch(trace)
        velocity = tracker.current_velocity(1)
        assert velocity is not None
        assert velocity.speed_knots == pytest.approx(10.0, rel=0.01)
        assert velocity.heading_degrees == pytest.approx(90.0, abs=1.0)


class TestPause:
    def test_halted_vessel_emits_pauses(self):
        tracker = MobilityTracker()
        trace = TraceBuilder().halt(5, jitter_meters=3.0).build()
        events = tracker.process_batch(trace)
        assert len(events_of(events, MovementEventType.PAUSE)) == 5

    def test_cruising_vessel_emits_no_pauses(self):
        tracker = MobilityTracker()
        trace = TraceBuilder().cruise(90.0, 12.0, 10).build()
        events = tracker.process_batch(trace)
        assert events_of(events, MovementEventType.PAUSE) == []

    def test_pause_threshold_is_min_speed(self):
        # Exactly the Table 3 default: v_min = 1 knot.
        params = TrackingParameters()
        tracker = MobilityTracker(params)
        slow = TraceBuilder().cruise(90.0, 0.9, 3).build()
        events = tracker.process_batch(slow)
        assert len(events_of(events, MovementEventType.PAUSE)) == 3

        tracker = MobilityTracker(params)
        faster = TraceBuilder().cruise(90.0, 1.5, 3).build()
        events = tracker.process_batch(faster)
        assert events_of(events, MovementEventType.PAUSE) == []


class TestSpeedChange:
    def test_deceleration_detected(self):
        tracker = MobilityTracker()
        trace = TraceBuilder().cruise(90.0, 15.0, 5).cruise(90.0, 8.0, 2).build()
        events = tracker.process_batch(trace)
        changes = events_of(events, MovementEventType.SPEED_CHANGE)
        assert len(changes) >= 1
        # |8 - 15| / 8 = 87% > alpha = 25%.
        assert changes[0].speed_knots == pytest.approx(8.0, rel=0.05)

    def test_acceleration_detected(self):
        tracker = MobilityTracker()
        trace = TraceBuilder().cruise(90.0, 8.0, 5).cruise(90.0, 15.0, 2).build()
        events = tracker.process_batch(trace)
        assert len(events_of(events, MovementEventType.SPEED_CHANGE)) >= 1

    def test_small_variation_not_flagged(self):
        tracker = MobilityTracker()
        # 10 -> 11 knots: |11-10|/11 = 9% < 25%.
        trace = TraceBuilder().cruise(90.0, 10.0, 5).cruise(90.0, 11.0, 3).build()
        events = tracker.process_batch(trace)
        assert events_of(events, MovementEventType.SPEED_CHANGE) == []

    def test_alpha_parameter_respected(self):
        # With alpha = 5%, the same 10 -> 11 knots change is flagged.
        params = TrackingParameters(speed_change_percent=5.0)
        tracker = MobilityTracker(params)
        trace = TraceBuilder().cruise(90.0, 10.0, 5).cruise(90.0, 11.0, 3).build()
        events = tracker.process_batch(trace)
        assert len(events_of(events, MovementEventType.SPEED_CHANGE)) >= 1

    def test_anchored_jitter_not_a_speed_change(self):
        tracker = MobilityTracker()
        trace = TraceBuilder().halt(8, jitter_meters=4.0).build()
        events = tracker.process_batch(trace)
        assert events_of(events, MovementEventType.SPEED_CHANGE) == []


class TestTurn:
    def test_sharp_turn_detected(self):
        tracker = MobilityTracker()
        trace = TraceBuilder().cruise(90.0, 12.0, 5).cruise(0.0, 12.0, 3).build()
        events = tracker.process_batch(trace)
        turns = events_of(events, MovementEventType.TURN)
        assert len(turns) == 1
        assert turns[0].heading_degrees == pytest.approx(0.0, abs=2.0)

    def test_shallow_turn_below_threshold_ignored(self):
        tracker = MobilityTracker(TrackingParameters(turn_threshold_degrees=15.0))
        trace = TraceBuilder().cruise(90.0, 12.0, 5).cruise(80.0, 12.0, 3).build()
        events = tracker.process_batch(trace)
        assert events_of(events, MovementEventType.TURN) == []

    def test_threshold_sweep_controls_sensitivity(self):
        # The same 10-degree course change: flagged at 5 degrees, not at 15.
        trace = TraceBuilder().cruise(90.0, 12.0, 5).cruise(100.0, 12.0, 3).build()
        strict = MobilityTracker(TrackingParameters(turn_threshold_degrees=5.0))
        relaxed = MobilityTracker(TrackingParameters(turn_threshold_degrees=15.0))
        assert len(events_of(strict.process_batch(trace), MovementEventType.TURN)) == 1
        assert events_of(relaxed.process_batch(trace), MovementEventType.TURN) == []

    def test_no_turn_while_halted(self):
        # Heading jitter at anchor must not produce turns.
        tracker = MobilityTracker()
        trace = TraceBuilder().halt(10, jitter_meters=5.0).build()
        events = tracker.process_batch(trace)
        assert events_of(events, MovementEventType.TURN) == []

    def test_turn_through_north_wrap(self):
        tracker = MobilityTracker()
        trace = TraceBuilder().cruise(350.0, 12.0, 5).cruise(10.0, 12.0, 3).build()
        events = tracker.process_batch(trace)
        # 20-degree wrap-around change > 15-degree threshold.
        assert len(events_of(events, MovementEventType.TURN)) == 1


class TestOffCourse:
    def test_outlier_discarded(self):
        tracker = MobilityTracker()
        trace = (
            TraceBuilder()
            .cruise(90.0, 10.0, 8)
            .jump(0.0, 2500.0, interval=30)
            .cruise(90.0, 10.0, 4)
            .build()
        )
        events = tracker.process_batch(trace)
        outliers = events_of(events, MovementEventType.OFF_COURSE)
        assert len(outliers) == 1
        assert tracker.statistics.positions_discarded_as_outliers == 1
        # The outlier does not derail the course: no spurious turns.
        assert events_of(events, MovementEventType.TURN) == []

    def test_gps_jump_at_anchor_discarded(self):
        tracker = MobilityTracker()
        trace = (
            TraceBuilder()
            .halt(8, jitter_meters=3.0)
            .jump(45.0, 2000.0, interval=30)
            .halt(4, jitter_meters=3.0)
            .build()
        )
        events = tracker.process_batch(trace)
        assert len(events_of(events, MovementEventType.OFF_COURSE)) == 1

    def test_persistent_deviation_eventually_accepted(self):
        # A genuine course change is not dropped forever: after
        # max_consecutive_outliers discards the tracker re-accepts input.
        params = TrackingParameters(max_consecutive_outliers=2)
        tracker = MobilityTracker(params)
        trace = (
            TraceBuilder()
            .cruise(90.0, 5.0, 8, interval=60)
            .cruise(0.0, 40.0, 6, interval=60)
            .build()
        )
        events = tracker.process_batch(trace)
        outliers = events_of(events, MovementEventType.OFF_COURSE)
        assert len(outliers) <= params.max_consecutive_outliers
        velocity = tracker.current_velocity(1)
        # The tracker eventually follows the new fast northbound course.
        assert velocity.speed_knots == pytest.approx(40.0, rel=0.1)

    def test_statistics_count_events(self):
        tracker = MobilityTracker()
        trace = TraceBuilder().cruise(90.0, 12.0, 5).cruise(0.0, 12.0, 2).build()
        tracker.process_batch(trace)
        assert tracker.statistics.positions_seen == len(trace)
        assert (
            tracker.statistics.events_by_type.get(MovementEventType.TURN, 0) == 1
        )
