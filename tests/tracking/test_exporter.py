"""Tests for KML / GeoJSON export of synopses."""

import json
import xml.etree.ElementTree as ET

from repro.tracking import TrajectoryExporter
from repro.tracking.types import CriticalPoint, MovementEventType


def make_point(mmsi, timestamp, lon=24.0, lat=38.0, kinds=(MovementEventType.TURN,)):
    return CriticalPoint(
        mmsi=mmsi,
        lon=lon,
        lat=lat,
        timestamp=timestamp,
        annotations=frozenset(kinds),
        speed_mps=5.0,
    )


POINTS = [
    make_point(1, 10, lon=24.0),
    make_point(1, 20, lon=24.1),
    make_point(2, 15, lon=25.0, kinds=(MovementEventType.STOP_END,)),
]


class TestGrouping:
    def test_groups_and_orders_by_time(self):
        exporter = TrajectoryExporter()
        tracks = exporter.group_by_vessel(
            [make_point(1, 20), make_point(1, 10), make_point(2, 5)]
        )
        assert sorted(tracks) == [1, 2]
        assert [p.timestamp for p in tracks[1]] == [10, 20]


class TestKml:
    def test_well_formed_xml(self):
        document = TrajectoryExporter().to_kml(POINTS)
        root = ET.fromstring(document)
        assert root.tag.endswith("kml")

    def test_one_linestring_per_vessel(self):
        document = TrajectoryExporter().to_kml(POINTS)
        root = ET.fromstring(document)
        ns = "{http://www.opengis.net/kml/2.2}"
        linestrings = root.findall(f".//{ns}LineString")
        assert len(linestrings) == 2

    def test_placemark_per_critical_point(self):
        document = TrajectoryExporter().to_kml(POINTS)
        root = ET.fromstring(document)
        ns = "{http://www.opengis.net/kml/2.2}"
        points = root.findall(f".//{ns}Point")
        assert len(points) == len(POINTS)

    def test_annotations_in_names(self):
        document = TrajectoryExporter().to_kml(POINTS)
        assert "turn" in document
        assert "stop_end" in document

    def test_empty_input(self):
        document = TrajectoryExporter().to_kml([])
        root = ET.fromstring(document)
        assert root is not None


class TestGeoJson:
    def test_serializable(self):
        collection = TrajectoryExporter().to_geojson(POINTS)
        encoded = json.dumps(collection)
        assert json.loads(encoded)["type"] == "FeatureCollection"

    def test_feature_counts(self):
        collection = TrajectoryExporter().to_geojson(POINTS)
        kinds = [f["properties"]["kind"] for f in collection["features"]]
        assert kinds.count("synopsis") == 2
        assert kinds.count("critical_point") == 3

    def test_point_properties(self):
        collection = TrajectoryExporter().to_geojson(POINTS)
        point_features = [
            f
            for f in collection["features"]
            if f["properties"]["kind"] == "critical_point"
        ]
        sample = point_features[0]["properties"]
        assert {"mmsi", "timestamp", "annotations", "speed_knots"} <= set(sample)

    def test_linestring_coordinates_ordered(self):
        collection = TrajectoryExporter().to_geojson(POINTS)
        line = next(
            f
            for f in collection["features"]
            if f["properties"]["kind"] == "synopsis"
            and f["properties"]["mmsi"] == 1
        )
        assert line["geometry"]["coordinates"] == [[24.0, 38.0], [24.1, 38.0]]
