"""The columnar kernels' hard invariant: byte-identical event streams.

The ``array`` and ``numpy`` backends reorganize the Mobility Tracker's
hot path around per-vessel columns, but they are *kernels*, not
approximations: on any input, slide by slide, they must emit exactly the
events the scalar reference emits — same order, same floats, same reprs.
These tests pin that twin contract on a full simulator fleet (directly
and through the sharded runtime at 1 and 2 shards) and on the adversarial
per-batch shapes the columnar grouping has to get right: empty slides,
single-position vessels, out-of-order timestamps within a batch, and a
vessel whose whole history is one stop run.
"""

import pytest

from repro.ais.stream import PositionalTuple, StreamReplayer, TimedArrival
from repro.pipeline import SurveillanceSystem, SystemConfig
from repro.simulator import FleetSimulator
from repro.tracking import MobilityTracker, WindowSpec
from repro.tracking.backends import (
    available_backends,
    backend_name,
    create_tracker,
)
from tests.tracking.helpers import TraceBuilder

COLUMNAR_BACKENDS = [name for name in available_backends() if name != "scalar"]


def _slides(stream, slide_seconds=1800):
    """The stream cut into window slides, as the pipeline feeds them."""
    arrivals = [TimedArrival(p.timestamp, p) for p in stream]
    return [batch for _, batch in StreamReplayer(arrivals, slide_seconds).batches()]


def _transcript(tracker, slides):
    """Everything observable from a tracker, repr'd for byte comparison."""
    per_slide = [[repr(e) for e in tracker.process_batch(batch)] for batch in slides]
    final = [repr(e) for e in tracker.finalize()]
    mmsis = {p.mmsi for batch in slides for p in batch}
    vessels = {
        mmsi: (
            repr(tracker.current_velocity(mmsi)),
            repr(tracker.traveled_distance_meters(mmsi)),
        )
        for mmsi in sorted(mmsis)
    }
    return {
        "slides": per_slide,
        "finalize": final,
        "vessel_count": tracker.vessel_count(),
        "vessels": vessels,
    }


@pytest.fixture(scope="module")
def sim_slides(world):
    """A full mixed simulator fleet, cut into 30-minute slides."""
    simulator = FleetSimulator(world, seed=2015, duration_seconds=8 * 3600)
    fleet = simulator.build_mixed_fleet(40)
    return _slides(simulator.positions(fleet))


@pytest.fixture(scope="module")
def scalar_transcript(sim_slides):
    transcript = _transcript(MobilityTracker(), sim_slides)
    # The fleet must actually exercise the kernels, or parity is vacuous.
    assert sum(len(s) for s in transcript["slides"]) > 100
    assert transcript["vessel_count"] == 40
    return transcript


@pytest.mark.parametrize("backend", COLUMNAR_BACKENDS)
def test_full_fleet_parity(backend, sim_slides, scalar_transcript):
    """Every columnar kernel reproduces the scalar stream byte for byte."""
    transcript = _transcript(create_tracker(backend=backend), sim_slides)
    assert transcript == scalar_transcript


@pytest.mark.parametrize("backend", COLUMNAR_BACKENDS)
def test_tagged_batch_parity(backend, sim_slides):
    """The sharded runtime's tagged path agrees tag-by-tag with scalar."""
    scalar, columnar = MobilityTracker(), create_tracker(backend=backend)
    for batch in sim_slides[:8]:
        indexed = list(enumerate(batch))
        assert (
            repr(columnar.process_batch_tagged(indexed))
            == repr(scalar.process_batch_tagged(indexed))
        )


@pytest.mark.parametrize("shards", [1, 2])
def test_sharded_parity_with_scalar_single_process(world, small_fleet, shards):
    """End to end at 1 and 2 shards: array workers vs the scalar pipeline.

    The parallel runtime runs the columnar kernel inside its shard
    workers (the default backend); the reference is the single-process
    pipeline pinned to ``scalar``.  Alerts, critical points and event
    counts must match exactly — the kernel swap and the sharding both
    have to be invisible.
    """
    from repro.runtime import ParallelSurveillanceSystem

    def replay(system):
        arrivals = [TimedArrival(p.timestamp, p) for p in small_fleet["stream"]]
        slides = []
        for query_time, batch in StreamReplayer(arrivals, 1800).batches():
            report = system.process_slide(batch, query_time)
            slides.append((
                report.query_time,
                report.movement_events,
                [repr(p) for p in report.fresh_points],
                [repr(a) for a in report.alerts],
            ))
        final = system.finalize()
        return {
            "slides": slides,
            "finalize_events": final.movement_events,
            "synopsis": [repr(p) for p in system.current_synopsis()],
        }

    window = WindowSpec.of_hours(2, 0.5)
    reference = replay(SurveillanceSystem(
        world, small_fleet["specs"],
        SystemConfig(window=window, tracking_backend="scalar"),
    ))
    assert any(s[3] for s in reference["slides"]), "no alerts raised"
    with ParallelSurveillanceSystem(
        world, small_fleet["specs"],
        SystemConfig(window=window, tracking_backend="array"),
        shards=shards,
    ) as system:
        assert replay(system) == reference


# ---------------------------------------------------------------------------
# per-batch edge cases the columnar grouping has to get right
# ---------------------------------------------------------------------------


def _assert_edge_parity(batches):
    """All kernels agree with scalar on a hand-built batch sequence."""
    reference = None
    for backend in available_backends():
        tracker = create_tracker(backend=backend)
        transcript = (
            [[repr(e) for e in tracker.process_batch(b)] for b in batches],
            [repr(e) for e in tracker.finalize()],
            tracker.vessel_count(),
        )
        if reference is None:
            reference = transcript
        else:
            assert transcript == reference, backend
    return reference


def test_empty_slide():
    """An empty slide emits nothing and disturbs no state."""
    trace = TraceBuilder(mmsi=7).cruise(90, 12, 10).build()
    reference = _assert_edge_parity([trace[:5], [], trace[5:]])
    continuous = _assert_edge_parity([trace[:5], trace[5:]])
    assert reference[0][0] == continuous[0][0]
    assert reference[0][2] == continuous[0][1]
    assert reference[0][1] == []


def test_single_position_vessel():
    """A vessel that reports once has a state but no pair chain yet."""
    lone = PositionalTuple(42, 24.5, 38.5, 300)
    crowd = TraceBuilder(mmsi=9).cruise(45, 10, 6).build()
    reference = _assert_edge_parity([crowd + [lone]])
    assert reference[2] == 2
    tracker = create_tracker(backend="array")
    tracker.process_batch(crowd + [lone])
    assert tracker.current_velocity(42) is None
    assert tracker.traveled_distance_meters(42) == 0.0


def test_out_of_order_timestamps_within_batch():
    """A regressed timestamp inside one batch is handled identically.

    The columnar kernels group by vessel but must preserve *arrival*
    order per vessel, including non-monotone timestamps (dt <= 0 takes
    the scalar gap/reset path, never a crash or a reorder).
    """
    trace = TraceBuilder(mmsi=3).cruise(180, 14, 12).build()
    other = TraceBuilder(mmsi=4, lon=25.0).cruise(0, 9, 12).build()
    batch = sorted(trace + other, key=lambda p: p.timestamp)
    # Regress vessel 3 mid-batch: re-report its 3rd position after its 8th.
    stale = trace[3]._replace(timestamp=trace[3].timestamp)
    index = batch.index(trace[8])
    batch.insert(index + 1, stale)
    _assert_edge_parity([batch])


def test_all_stop_vessel():
    """A vessel whose entire history is one anchored stop run."""
    trace = (
        TraceBuilder(mmsi=11)
        .halt(30, interval=120, jitter_meters=8.0)
        .build()
    )
    reference = _assert_edge_parity([trace[:15], trace[15:]])
    emitted = [e for slide in reference[0] for e in slide] + reference[1]
    assert any("STOP_START" in e for e in emitted)
    assert any("STOP_END" in e for e in emitted)


# ---------------------------------------------------------------------------
# the registry surface
# ---------------------------------------------------------------------------


def test_registry_surface():
    assert "scalar" in available_backends()
    assert "array" in available_backends()
    for name in available_backends():
        assert backend_name(create_tracker(backend=name)) == name
    assert backend_name(object()) == "scalar"
    with pytest.raises(ValueError, match="unknown tracking backend"):
        create_tracker(backend="fortran")
