"""Tests for long-lasting trajectory events (Section 3.1, Figure 3)."""

from repro.geo.haversine import haversine_meters
from repro.tracking import MobilityTracker, MovementEventType, TrackingParameters
from tests.tracking.helpers import TraceBuilder


def events_of(events, kind):
    return [e for e in events if e.event_type is kind]


class TestGap:
    def test_gap_reported_at_both_ends(self):
        tracker = MobilityTracker()
        trace = (
            TraceBuilder()
            .cruise(90.0, 10.0, 5)
            .silence(1200)  # 20 min > Delta-T = 10 min
            .cruise(90.0, 10.0, 3)
            .build()
        )
        events = tracker.process_batch(trace)
        starts = events_of(events, MovementEventType.GAP_START)
        ends = events_of(events, MovementEventType.GAP_END)
        assert len(starts) == 1
        assert len(ends) == 1
        # The gap-start critical point is the position where the gap began.
        assert starts[0].timestamp < ends[0].timestamp
        assert starts[0].duration_seconds >= 1200

    def test_short_silence_is_not_a_gap(self):
        tracker = MobilityTracker()
        trace = (
            TraceBuilder()
            .cruise(90.0, 10.0, 5)
            .silence(300)  # 5 min < Delta-T
            .cruise(90.0, 10.0, 3)
            .build()
        )
        events = tracker.process_batch(trace)
        assert events_of(events, MovementEventType.GAP_START) == []

    def test_gap_threshold_parameter(self):
        params = TrackingParameters(gap_period_seconds=120)
        tracker = MobilityTracker(params)
        trace = TraceBuilder().cruise(90.0, 10.0, 3).silence(180).cruise(90.0, 10.0, 2).build()
        events = tracker.process_batch(trace)
        assert len(events_of(events, MovementEventType.GAP_START)) == 1

    def test_gap_closes_open_stop(self):
        tracker = MobilityTracker()
        trace = (
            TraceBuilder()
            .cruise(90.0, 10.0, 3)
            .halt(12, jitter_meters=3.0)
            .silence(1500)
            .cruise(90.0, 10.0, 2)
            .build()
        )
        events = tracker.process_batch(trace)
        stop_ends = events_of(events, MovementEventType.STOP_END)
        gap_starts = events_of(events, MovementEventType.GAP_START)
        assert len(stop_ends) == 1
        assert len(gap_starts) == 1
        # The stop ended no later than the gap began.
        assert stop_ends[0].timestamp <= gap_starts[0].timestamp


class TestSmoothTurn:
    def test_cumulative_drift_detected(self):
        # Eight 5-degree changes: each below the 15-degree threshold, the
        # accumulation far above it.
        tracker = MobilityTracker()
        builder = TraceBuilder()
        heading = 90.0
        builder.cruise(heading, 12.0, 3)
        for _ in range(8):
            heading -= 5.0
            builder.cruise(heading, 12.0, 1)
        events = tracker.process_batch(builder.build())
        assert events_of(events, MovementEventType.TURN) == []
        assert len(events_of(events, MovementEventType.SMOOTH_TURN)) >= 1

    def test_alternating_jitter_cancels(self):
        # +-6 degrees of alternating drift never accumulates to a turn.
        tracker = MobilityTracker()
        builder = TraceBuilder()
        builder.cruise(90.0, 12.0, 3)
        for index in range(10):
            builder.cruise(90.0 + (6.0 if index % 2 == 0 else -6.0), 12.0, 1)
        events = tracker.process_batch(builder.build())
        assert events_of(events, MovementEventType.SMOOTH_TURN) == []

    def test_sharp_turn_resets_accumulator(self):
        # After an instantaneous turn, accumulation restarts from zero.
        tracker = MobilityTracker()
        builder = TraceBuilder()
        builder.cruise(90.0, 12.0, 4)
        builder.cruise(140.0, 12.0, 1)  # sharp: 50 degrees
        builder.cruise(134.0, 12.0, 1)  # small drift after the turn
        builder.cruise(128.0, 12.0, 1)
        events = tracker.process_batch(builder.build())
        assert len(events_of(events, MovementEventType.TURN)) == 1
        assert events_of(events, MovementEventType.SMOOTH_TURN) == []


class TestLongTermStop:
    def test_stop_start_and_end_emitted(self):
        tracker = MobilityTracker()
        trace = (
            TraceBuilder()
            .cruise(90.0, 10.0, 3)
            .halt(15, jitter_meters=4.0)
            .cruise(90.0, 10.0, 5)
            .build()
        )
        events = tracker.process_batch(trace)
        starts = events_of(events, MovementEventType.STOP_START)
        ends = events_of(events, MovementEventType.STOP_END)
        assert len(starts) == 1
        assert len(ends) == 1
        assert ends[0].duration_seconds > 0
        assert starts[0].timestamp < ends[0].timestamp

    def test_stop_centroid_near_anchor_point(self):
        tracker = MobilityTracker()
        builder = TraceBuilder().cruise(90.0, 10.0, 3)
        anchor = (builder.lon, builder.lat)
        trace = builder.halt(15, jitter_meters=5.0).cruise(90.0, 10.0, 3).build()
        events = tracker.process_batch(trace)
        end = events_of(events, MovementEventType.STOP_END)[0]
        assert haversine_meters(anchor[0], anchor[1], end.lon, end.lat) < 50.0

    def test_short_halt_is_not_a_stop(self):
        # Fewer than m = 10 consecutive pauses: no long-term stop.
        tracker = MobilityTracker()
        trace = (
            TraceBuilder()
            .cruise(90.0, 10.0, 3)
            .halt(5, jitter_meters=3.0)
            .cruise(90.0, 10.0, 5)
            .build()
        )
        events = tracker.process_batch(trace)
        assert events_of(events, MovementEventType.STOP_START) == []

    def test_open_stop_closed_by_finalize(self):
        tracker = MobilityTracker()
        trace = TraceBuilder().cruise(90.0, 10.0, 3).halt(15, jitter_meters=3.0).build()
        events = tracker.process_batch(trace)
        assert len(events_of(events, MovementEventType.STOP_START)) == 1
        assert events_of(events, MovementEventType.STOP_END) == []
        final = tracker.finalize()
        assert len(events_of(final, MovementEventType.STOP_END)) == 1

    def test_m_parameter_controls_detection(self):
        params = TrackingParameters(inspected_positions=4)
        tracker = MobilityTracker(params)
        trace = TraceBuilder().cruise(90.0, 10.0, 3).halt(5, jitter_meters=3.0).build()
        events = tracker.process_batch(trace) + tracker.finalize()
        assert len(events_of(events, MovementEventType.STOP_START)) == 1

    def test_drift_beyond_radius_splits_runs(self):
        # Pauses scattered wider than r = 200 m do not form one stop.
        params = TrackingParameters(stop_radius_meters=50.0)
        tracker = MobilityTracker(params)
        trace = (
            TraceBuilder()
            .cruise(90.0, 10.0, 3)
            .halt(6, jitter_meters=3.0)
            .cruise(90.0, 3.0, 1, interval=120)  # drift 180 m away, slowly
            .halt(6, jitter_meters=3.0)
            .build()
        )
        events = tracker.process_batch(trace) + tracker.finalize()
        assert events_of(events, MovementEventType.STOP_START) == []


class TestSlowMotion:
    def test_sustained_low_speed_along_path(self):
        tracker = MobilityTracker()
        # 3.5 knots for 25 reports along a path: slow motion, not a stop.
        trace = TraceBuilder().cruise(90.0, 12.0, 3).cruise(90.0, 3.5, 25, interval=120).build()
        events = tracker.process_batch(trace)
        slow = events_of(events, MovementEventType.SLOW_MOTION)
        assert len(slow) >= 1
        assert events_of(events, MovementEventType.STOP_START) == []
        # The median point lies on the path, between start and end.
        assert trace[0].lon < slow[0].lon < trace[-1].lon

    def test_confined_low_speed_is_a_stop_not_slow_motion(self):
        tracker = MobilityTracker()
        trace = TraceBuilder().cruise(90.0, 12.0, 3).halt(15, jitter_meters=3.0).build()
        events = tracker.process_batch(trace) + tracker.finalize()
        assert events_of(events, MovementEventType.SLOW_MOTION) == []
        assert len(events_of(events, MovementEventType.STOP_START)) == 1

    def test_normal_cruise_is_not_slow(self):
        tracker = MobilityTracker()
        trace = TraceBuilder().cruise(90.0, 12.0, 30).build()
        events = tracker.process_batch(trace)
        assert events_of(events, MovementEventType.SLOW_MOTION) == []

    def test_slow_speed_threshold_parameter(self):
        # 6 knots: slow only when the threshold is raised above it.
        trace = TraceBuilder().cruise(90.0, 6.0, 15, interval=120).build()
        default = MobilityTracker()
        assert events_of(
            default.process_batch(trace), MovementEventType.SLOW_MOTION
        ) == []
        raised = MobilityTracker(TrackingParameters(slow_speed_knots=8.0))
        assert (
            len(
                events_of(
                    raised.process_batch(trace), MovementEventType.SLOW_MOTION
                )
            )
            >= 1
        )

    def test_repeated_slow_motion_over_long_episode(self):
        # A multi-hour trawl produces one slowMotion ME per m-report run.
        tracker = MobilityTracker()
        trace = TraceBuilder().cruise(90.0, 12.0, 3).cruise(90.0, 3.0, 40, interval=120).build()
        events = tracker.process_batch(trace)
        assert len(events_of(events, MovementEventType.SLOW_MOTION)) >= 3


class TestComplexityContract:
    def test_linear_scaling_in_positions(self):
        # O(1)/O(m) per tuple: 4x the input should stay well under 8x time.
        import time

        def run(repeats):
            tracker = MobilityTracker()
            trace = TraceBuilder().cruise(90.0, 10.0, repeats).build()
            started = time.perf_counter()
            tracker.process_batch(trace)
            return time.perf_counter() - started

        small = run(2000) + 1e-9
        large = run(8000)
        assert large / small < 8.0
