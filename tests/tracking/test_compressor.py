"""Tests for the compressor: events -> critical points."""

import pytest

from repro.tracking import Compressor, MobilityTracker, MovementEventType, WindowSpec
from repro.tracking.compressor import merge_events_into_critical_points
from repro.tracking.types import MovementEvent
from tests.tracking.helpers import TraceBuilder


def make_event(kind, mmsi=1, timestamp=0, duration=0, lon=24.0, lat=38.0):
    return MovementEvent(kind, mmsi, lon, lat, timestamp, duration_seconds=duration)


class TestMerging:
    def test_pause_and_off_course_filtered(self):
        points = merge_events_into_critical_points(
            [
                make_event(MovementEventType.PAUSE),
                make_event(MovementEventType.OFF_COURSE, timestamp=1),
            ]
        )
        assert points == []

    def test_critical_kinds_survive(self):
        points = merge_events_into_critical_points(
            [make_event(MovementEventType.TURN, timestamp=5)]
        )
        assert len(points) == 1
        assert points[0].has(MovementEventType.TURN)

    def test_simultaneous_events_merge(self):
        points = merge_events_into_critical_points(
            [
                make_event(MovementEventType.TURN, timestamp=5),
                make_event(MovementEventType.SPEED_CHANGE, timestamp=5),
            ]
        )
        assert len(points) == 1
        assert points[0].annotations == frozenset(
            {MovementEventType.TURN, MovementEventType.SPEED_CHANGE}
        )

    def test_different_vessels_not_merged(self):
        points = merge_events_into_critical_points(
            [
                make_event(MovementEventType.TURN, mmsi=1, timestamp=5),
                make_event(MovementEventType.TURN, mmsi=2, timestamp=5),
            ]
        )
        assert len(points) == 2

    def test_representative_is_longest_duration(self):
        # An aggregated stop centroid outranks an instantaneous annotation.
        points = merge_events_into_critical_points(
            [
                make_event(MovementEventType.SPEED_CHANGE, timestamp=5, lon=24.0),
                make_event(
                    MovementEventType.STOP_END,
                    timestamp=5,
                    duration=600,
                    lon=24.5,
                ),
            ]
        )
        assert len(points) == 1
        assert points[0].lon == 24.5
        assert points[0].duration_seconds == 600

    def test_output_sorted_by_vessel_and_time(self):
        points = merge_events_into_critical_points(
            [
                make_event(MovementEventType.TURN, mmsi=2, timestamp=10),
                make_event(MovementEventType.TURN, mmsi=1, timestamp=20),
                make_event(MovementEventType.TURN, mmsi=1, timestamp=5),
            ]
        )
        assert [(p.mmsi, p.timestamp) for p in points] == [(1, 5), (1, 20), (2, 10)]


class TestCompressorWindow:
    def test_slide_returns_fresh_and_expired(self):
        compressor = Compressor(WindowSpec(100, 50))
        fresh, expired = compressor.slide(
            [make_event(MovementEventType.TURN, timestamp=10)], 50,
            raw_position_count=20,
        )
        assert len(fresh) == 1
        assert expired == []
        fresh, expired = compressor.slide(
            [make_event(MovementEventType.TURN, timestamp=120)], 150,
            raw_position_count=20,
        )
        assert len(fresh) == 1
        assert [p.timestamp for p in expired] == [10]

    def test_synopsis_is_window_contents(self):
        compressor = Compressor(WindowSpec(1000, 50))
        compressor.slide(
            [
                make_event(MovementEventType.TURN, mmsi=2, timestamp=10),
                make_event(MovementEventType.TURN, mmsi=1, timestamp=20),
            ],
            50,
        )
        synopsis = compressor.synopsis()
        assert [(p.mmsi, p.timestamp) for p in synopsis] == [(1, 20), (2, 10)]
        assert len(compressor.synopsis(1)) == 1

    def test_compression_statistics(self):
        compressor = Compressor(WindowSpec(1000, 50))
        compressor.slide(
            [make_event(MovementEventType.TURN, timestamp=10)], 50,
            raw_position_count=100,
        )
        stats = compressor.statistics
        assert stats.raw_positions == 100
        assert stats.critical_points == 1
        assert stats.compression_ratio == pytest.approx(0.99)

    def test_ratio_zero_before_any_input(self):
        compressor = Compressor(WindowSpec(1000, 50))
        assert compressor.statistics.compression_ratio == 0.0


class TestEndToEndCompression:
    def test_high_compression_on_realistic_trace(self):
        # A ferry-like trace: cruise, turn, stop, cruise -> few critical pts.
        tracker = MobilityTracker()
        trace = (
            TraceBuilder()
            .cruise(90.0, 14.0, 40)
            .cruise(30.0, 14.0, 40)
            .halt(20, jitter_meters=4.0)
            .cruise(180.0, 14.0, 40)
            .build()
        )
        events = tracker.process_batch(trace) + tracker.finalize()
        compressor = Compressor(WindowSpec.of_hours(24, 1))
        fresh, _ = compressor.slide(
            events, trace[-1].timestamp, raw_position_count=len(trace)
        )
        ratio = compressor.statistics.compression_ratio
        assert ratio > 0.9
        # Critical points cover the course change and the stop.
        kinds = {kind for p in fresh for kind in p.annotations}
        assert MovementEventType.TURN in kinds
        assert MovementEventType.STOP_START in kinds
        assert MovementEventType.STOP_END in kinds
