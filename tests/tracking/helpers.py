"""Synthetic trace builders shared by the tracking tests."""

from repro.ais.stream import PositionalTuple
from repro.geo.haversine import destination_point
from repro.geo.units import knots_to_mps


class TraceBuilder:
    """Compose a deterministic vessel trace segment by segment."""

    def __init__(self, mmsi=1, lon=24.0, lat=38.0, start_time=0):
        self.mmsi = mmsi
        self.lon = lon
        self.lat = lat
        self.time = start_time
        self.positions: list[PositionalTuple] = [
            PositionalTuple(mmsi, lon, lat, start_time)
        ]

    def cruise(self, heading, speed_knots, reports, interval=60):
        """Straight constant-speed reports."""
        step = knots_to_mps(speed_knots) * interval
        for _ in range(reports):
            self.lon, self.lat = destination_point(
                self.lon, self.lat, heading, step
            )
            self.time += interval
            self.positions.append(
                PositionalTuple(self.mmsi, self.lon, self.lat, self.time)
            )
        return self

    def halt(self, reports, interval=120, jitter_meters=0.0):
        """Stationary reports, optionally with deterministic jitter."""
        for index in range(reports):
            lon, lat = self.lon, self.lat
            if jitter_meters:
                lon, lat = destination_point(
                    lon, lat, (index * 73) % 360, jitter_meters
                )
            self.time += interval
            self.positions.append(
                PositionalTuple(self.mmsi, lon, lat, self.time)
            )
        return self

    def silence(self, seconds):
        """Advance time without reporting (a communication gap)."""
        self.time += seconds
        return self

    def jump(self, heading, distance_meters, interval=60):
        """A single displaced report (an outlier), then return to course."""
        lon, lat = destination_point(self.lon, self.lat, heading, distance_meters)
        self.time += interval
        self.positions.append(PositionalTuple(self.mmsi, lon, lat, self.time))
        return self

    def build(self):
        """The accumulated positions."""
        return list(self.positions)
