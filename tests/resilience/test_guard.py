"""Graceful degradation: spill queue, guarded MOD, backlog convergence."""

import pytest

from repro.mod.database import MovingObjectDatabase
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import FaultPlan, inject
from repro.resilience.guard import (
    GuardedDatabase,
    SpillQueue,
    payload_to_point,
    point_to_payload,
)
from repro.resilience.retry import BackoffPolicy
from repro.tracking.types import CriticalPoint, MovementEventType


def make_point(i: int, mmsi: int = 244660001) -> CriticalPoint:
    return CriticalPoint(
        mmsi=mmsi,
        lon=23.5 + i * 1e-3,
        lat=37.9 + i * 1e-3,
        timestamp=1000 + 60 * i,
        annotations=frozenset(
            {MovementEventType.GAP_START} if i % 2 else set()
        ),
        speed_mps=5.0,
        heading_degrees=90.0,
        duration_seconds=60.0,
    )


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestPointSerialization:
    def test_roundtrip_preserves_every_field(self):
        for i in range(4):
            point = make_point(i)
            assert payload_to_point(point_to_payload(point)) == point


class TestSpillQueue:
    def test_in_memory_spill_and_drain(self):
        queue = SpillQueue()
        points = [make_point(i) for i in range(5)]
        queue.spill(points[:3])
        queue.spill(points[3:])
        assert len(queue) == 5
        assert queue.drain() == points
        assert len(queue) == 0
        assert not queue.snapshot()["durable"]

    def test_wal_backed_spill_survives_restart(self, tmp_path):
        points = [make_point(i) for i in range(6)]
        queue = SpillQueue(tmp_path)
        queue.spill(points)
        queue.close()

        recovered = SpillQueue(tmp_path)
        assert recovered.drain() == points
        recovered.close()
        # Drain truncated the backing segments: a third open is empty.
        assert len(SpillQueue(tmp_path)) == 0


class TestGuardedDatabase:
    def _guarded(self, world, tmp_path=None, threshold=2, attempts=2):
        clock = FakeClock()
        inner = MovingObjectDatabase(world.ports)
        guard = GuardedDatabase(
            inner,
            breaker=CircuitBreaker(
                name="test", failure_threshold=threshold,
                recovery_seconds=5.0, clock=clock,
            ),
            policy=BackoffPolicy(
                initial_seconds=0.0, max_attempts=attempts
            ),
            spill=SpillQueue(tmp_path) if tmp_path else SpillQueue(),
            sleep=lambda _: None,
        )
        return guard, clock

    def test_transparent_passthrough_when_healthy(self, world):
        guard, _ = self._guarded(world)
        assert guard.stage_points([make_point(i) for i in range(3)]) == 3
        assert guard.staged_count() == 3  # delegated attribute
        assert guard.trip_count() == 0
        guard.close()

    def test_write_fault_is_retried_transparently(self, world):
        guard, _ = self._guarded(world, attempts=3)
        with inject(FaultPlan.from_spec("mod.write:error@1")):
            staged = guard.stage_points([make_point(0)])
        assert staged == 1  # first attempt failed, retry landed it
        assert guard.staged_count() == 1
        assert len(guard.spill) == 0
        guard.close()

    def test_exhausted_retries_spill_and_recognition_continues(self, world):
        guard, _ = self._guarded(world, attempts=2)
        # Both attempts of the first batch fail; it must spill, not raise.
        with inject(FaultPlan.from_spec("mod.write:error@1,mod.write:error@2")):
            assert guard.stage_points([make_point(0), make_point(1)]) == 0
        assert len(guard.spill) == 2
        assert guard.degraded_batches == 1
        assert guard.staged_count() == 0
        guard.close()

    def test_open_circuit_spills_without_touching_the_database(self, world):
        guard, _ = self._guarded(world, threshold=1, attempts=1)
        with inject(FaultPlan.from_spec("mod.write:error@1")):
            guard.stage_points([make_point(0)])  # trips the breaker
            assert guard.breaker.state == "open"
            # The next batch must not even reach the fault point.
            guard.stage_points([make_point(1)])
        assert guard.breaker.rejected_count == 1
        assert len(guard.spill) == 2
        guard.close()

    def test_backlog_drains_in_order_once_the_mod_recovers(self, world):
        guard, clock = self._guarded(world, threshold=1, attempts=1)
        points = [make_point(i) for i in range(4)]
        with inject(FaultPlan.from_spec("mod.write:error@1")):
            guard.stage_points(points[:2])  # fails, spills, opens
        clock.now = 10.0  # past the recovery window: next call probes
        staged = guard.stage_points(points[2:])
        assert staged == 4  # backlog + fresh batch, one write
        assert guard.breaker.state == "closed"
        assert len(guard.spill) == 0
        # Staging converged to exactly what an unfailed run would hold.
        assert guard.staged_points(points[0].mmsi) == points
        guard.close()

    def test_reconstruct_skipped_while_open(self, world):
        guard, clock = self._guarded(world, threshold=1, attempts=1)
        with inject(FaultPlan.from_spec("mod.write:error@1")):
            guard.stage_points([make_point(0)])
        assert guard.breaker.state == "open"
        assert guard.reconstruct() == 0  # skipped, no exception
        assert guard.breaker.rejected_count == 1

    def test_reconstruct_fault_counted_not_fatal(self, world):
        guard, _ = self._guarded(world)
        guard.stage_points([make_point(i) for i in range(2)])
        with inject(FaultPlan.from_spec("mod.reconstruct:error@1")):
            assert guard.reconstruct() == 0
        assert guard.breaker.consecutive_failures == 1
        guard.close()

    def test_snapshot_shape(self, world):
        guard, _ = self._guarded(world)
        snap = guard.snapshot()
        assert snap["breaker"]["state"] == "closed"
        assert snap["spill"]["pending"] == 0
        assert snap["degraded_batches"] == 0
        guard.close()
