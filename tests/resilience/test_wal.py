"""Write-ahead log: framing, rotation, recovery, truncation."""

import struct

import pytest

from repro.resilience.wal import (
    IngestJournal,
    WriteAheadLog,
    read_journal,
    read_wal,
)


class TestFraming:
    def test_roundtrip_preserves_payloads_and_order(self, tmp_path):
        payloads = [f"record-{i}".encode() for i in range(50)]
        with WriteAheadLog(tmp_path) as wal:
            for payload in payloads:
                wal.append(payload)
        records, stats = read_wal(tmp_path)
        assert [r.payload for r in records] == payloads
        assert [r.seq for r in records] == list(range(50))
        assert stats.records == 50
        assert stats.corrupt_segments == 0

    def test_empty_directory_recovers_nothing(self, tmp_path):
        records, stats = read_wal(tmp_path / "missing")
        assert records == []
        assert stats.last_seq == -1

    def test_binary_payloads_survive(self, tmp_path):
        blob = bytes(range(256)) * 17
        with WriteAheadLog(tmp_path) as wal:
            wal.append(blob)
            wal.append(b"")
        records, _ = read_wal(tmp_path)
        assert records[0].payload == blob
        assert records[1].payload == b""

    def test_fsync_policy_validated(self, tmp_path):
        with pytest.raises(ValueError, match="fsync"):
            WriteAheadLog(tmp_path, fsync="sometimes")

    def test_append_after_close_refused(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.close()
        with pytest.raises(ValueError, match="closed"):
            wal.append(b"late")


class TestRotationAndRetention:
    def test_segments_rotate_at_size_threshold(self, tmp_path):
        with WriteAheadLog(tmp_path, segment_max_bytes=64) as wal:
            for i in range(20):
                wal.append(f"payload-{i:04d}".encode())
        segments = sorted(tmp_path.glob("wal-*.wal"))
        assert len(segments) > 1
        # Lexicographic segment order is replay order (zero-padded seqs).
        records, _ = read_wal(tmp_path)
        assert [r.seq for r in records] == list(range(20))

    def test_retention_retires_oldest_closed_segments(self, tmp_path):
        with WriteAheadLog(
            tmp_path, segment_max_bytes=64, retention_segments=2
        ) as wal:
            for i in range(40):
                wal.append(f"payload-{i:04d}".encode())
            assert wal.retired_segments > 0
        assert len(list(tmp_path.glob("wal-*.wal"))) <= 3  # 2 closed + active
        # What survives is a contiguous *suffix* — never a gappy middle.
        records, _ = read_wal(tmp_path)
        seqs = [r.seq for r in records]
        assert seqs == list(range(seqs[0], 40))

    def test_reopen_continues_sequence_in_new_segment(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            for i in range(5):
                wal.append(f"first-{i}".encode())
        wal2 = WriteAheadLog(tmp_path)
        assert len(wal2.recovered) == 5
        assert wal2.next_seq == 5
        wal2.append(b"second-0")
        wal2.close()
        records, _ = read_wal(tmp_path)
        assert [r.seq for r in records] == list(range(6))
        assert records[-1].payload == b"second-0"


class TestTruncatedTailRecovery:
    def _write(self, tmp_path, count=10):
        with WriteAheadLog(tmp_path) as wal:
            for i in range(count):
                wal.append(f"record-{i}".encode())
        return sorted(tmp_path.glob("wal-*.wal"))

    def test_truncated_tail_yields_clean_prefix(self, tmp_path):
        (segment,) = self._write(tmp_path)
        data = segment.read_bytes()
        segment.write_bytes(data[:-3])  # torn final record
        records, stats = read_wal(tmp_path)
        assert [r.payload for r in records] == [
            f"record-{i}".encode() for i in range(9)
        ]
        assert stats.corrupt_segments == 1
        assert stats.dropped_bytes > 0

    def test_corrupt_crc_stops_replay_at_corruption(self, tmp_path):
        (segment,) = self._write(tmp_path)
        data = bytearray(segment.read_bytes())
        # Flip one payload byte of the 4th record (after 3 clean frames).
        offset = sum(8 + len(f"record-{i}".encode()) for i in range(3))
        data[offset + 8] ^= 0xFF
        segment.write_bytes(bytes(data))
        records, stats = read_wal(tmp_path)
        assert len(records) == 3  # prefix only: nothing after the damage
        assert stats.corrupt_segments == 1

    def test_oversized_length_header_treated_as_corruption(self, tmp_path):
        (segment,) = self._write(tmp_path, count=2)
        data = bytearray(segment.read_bytes())
        struct.pack_into("<I", data, 0, 1 << 30)
        segment.write_bytes(bytes(data))
        records, stats = read_wal(tmp_path)
        assert records == []
        assert stats.corrupt_segments == 1

    def test_corruption_mid_directory_drops_later_segments(self, tmp_path):
        with WriteAheadLog(tmp_path, segment_max_bytes=64) as wal:
            for i in range(20):
                wal.append(f"payload-{i:04d}".encode())
        segments = sorted(tmp_path.glob("wal-*.wal"))
        assert len(segments) >= 3
        middle = segments[1]
        middle.write_bytes(middle.read_bytes()[:-2])
        records, stats = read_wal(tmp_path)
        # Everything after the corrupt segment has no sound ordering
        # relationship to the lost records: prefix semantics drop it all.
        first_counts, _, _ = (len(records), None, None)
        assert first_counts < 20
        assert all(r.seq == i for i, r in enumerate(records))
        assert stats.dropped_bytes >= sum(
            s.stat().st_size for s in segments[2:]
        )


class TestTruncation:
    def test_truncate_all_removes_every_segment(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_max_bytes=64)
        for i in range(20):
            wal.append(f"payload-{i:04d}".encode())
        wal.truncate_all()
        assert list(tmp_path.glob("wal-*.wal")) == []
        records, _ = read_wal(tmp_path)
        assert records == []

    def test_truncate_through_removes_only_applied_segments(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_max_bytes=64)
        for i in range(20):
            wal.append(f"payload-{i:04d}".encode())
        removed = wal.truncate_through(5)
        assert removed >= 1
        wal.close()
        records, _ = read_wal(tmp_path)
        assert records, "later segments must survive"
        # Survivors keep their original seqs (encoded in the filenames)
        # and form a contiguous run ending at the newest record.
        seqs = [r.seq for r in records]
        assert seqs == list(range(seqs[0], 20))
        assert seqs[0] > 0  # the applied prefix is gone


class TestIngestJournal:
    def test_sentence_roundtrip(self, tmp_path):
        journal = IngestJournal(tmp_path)
        journal.append(1000, "!AIVDM,1,1,,A,payload,0*5D")
        journal.append(1001, "!AIVDM,sentence\twith-tab-free-payload")
        journal.sync()
        journal.close()
        recovered, stats = read_journal(tmp_path)
        assert recovered[0] == (1000, "!AIVDM,1,1,,A,payload,0*5D")
        assert recovered[1][0] == 1001
        assert stats.records == 2

    def test_restart_recovers_then_clean_drain_truncates(self, tmp_path):
        journal = IngestJournal(tmp_path)
        for i in range(8):
            journal.append(100 + i, f"sentence-{i}")
        journal.close()

        reopened = IngestJournal(tmp_path)
        assert reopened.recovered == [
            (100 + i, f"sentence-{i}") for i in range(8)
        ]
        reopened.append(200, "post-recovery")
        reopened.truncate_all()
        assert read_journal(tmp_path)[0] == []
