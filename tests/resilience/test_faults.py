"""Deterministic fault injection: plans, specs, the global injector."""

import pytest

from repro.resilience.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    fault_point,
    get_injector,
    inject,
    install,
    uninstall,
)


class TestFaultSpec:
    def test_spec_string_roundtrip(self):
        spec = FaultSpec("mod.write", "error", at=3)
        assert spec.to_spec() == "mod.write:error@3"
        delayed = FaultSpec("service.slide", "delay", at=2, arg=0.5)
        assert delayed.to_spec() == "service.slide:delay@2:0.5"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("mod.write", "explode")

    def test_hit_index_is_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            FaultSpec("mod.write", "error", at=0)


class TestFaultPlan:
    def test_parse_multi_fault_spec(self):
        plan = FaultPlan.from_spec(
            "mod.write:error@3,service.slide:delay@2:0.5"
        )
        assert len(plan) == 2
        assert plan.specs[0] == FaultSpec("mod.write", "error", at=3)
        assert plan.specs[1] == FaultSpec(
            "service.slide", "delay", at=2, arg=0.5
        )
        assert FaultPlan.from_spec(plan.to_spec()).specs == plan.specs

    def test_malformed_spec_is_an_explicit_error(self):
        for bad in ("mod.write", "mod.write:error", "a:error@x", "a:zap@1"):
            with pytest.raises(ValueError):
                FaultPlan.from_spec(bad)

    def test_seeded_plans_are_replayable(self):
        sites = {"mod.write": ("error",), "service.slide": ("delay", "crash")}
        one = FaultPlan.seeded(42, sites)
        two = FaultPlan.seeded(42, sites)
        assert one.to_spec() == two.to_spec()
        assert FaultPlan.seeded(43, sites).to_spec() != one.to_spec()


class TestInjector:
    def test_error_fires_at_exact_hit(self):
        injector = FaultInjector(FaultPlan.from_spec("site.a:error@3"))
        assert injector.check("site.a") is None
        assert injector.check("site.a") is None
        with pytest.raises(InjectedFault) as excinfo:
            injector.check("site.a")
        assert excinfo.value.hit == 3
        assert injector.check("site.a") is None  # fires exactly once
        assert injector.snapshot()["fired"] == ["site.a:error@3"]

    def test_unhandled_kinds_returned_to_caller(self):
        injector = FaultInjector(FaultPlan.from_spec("site.b:crash@1"))
        spec = injector.check("site.b")
        assert spec is not None and spec.kind == "crash"

    def test_sites_count_independently(self):
        injector = FaultInjector(FaultPlan.from_spec("site.a:error@2"))
        injector.check("site.other")
        injector.check("site.a")
        assert injector.hits == {"site.other": 1, "site.a": 1}


class TestGlobalInstallation:
    def test_fault_point_is_noop_without_injector(self):
        uninstall()
        assert fault_point("anything") is None

    def test_inject_scopes_the_injector(self):
        with inject(FaultPlan.from_spec("x:error@1")) as injector:
            assert get_injector() is injector
            with pytest.raises(InjectedFault):
                fault_point("x")
        assert get_injector() is None

    def test_install_uninstall(self):
        injector = install(FaultPlan.from_spec("y:drop@1"))
        try:
            assert fault_point("y").kind == "drop"
        finally:
            uninstall()
