"""Backoff policy, retry_call, and the circuit breaker state machine."""

import pytest

from repro.resilience.breaker import CircuitBreaker, CircuitOpen
from repro.resilience.retry import BackoffPolicy, retry_call


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestBackoffPolicy:
    def test_deterministic_exponential_schedule(self):
        policy = BackoffPolicy(
            initial_seconds=0.1, multiplier=2.0, max_seconds=1.0,
            max_attempts=6,
        )
        assert policy.delays() == [0.1, 0.2, 0.4, 0.8, 1.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            BackoffPolicy(initial_seconds=-1)
        with pytest.raises(ValueError):
            BackoffPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            BackoffPolicy(max_attempts=0)


class TestRetryCall:
    def test_succeeds_after_transient_failures(self):
        calls = []
        slept = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "ok"

        policy = BackoffPolicy(initial_seconds=0.1, max_attempts=5)
        result = retry_call(flaky, policy, sleep=slept.append)
        assert result == "ok"
        assert len(calls) == 3
        assert slept == [0.1, 0.2]  # the policy's exact schedule

    def test_budget_exhaustion_reraises_last_error(self):
        policy = BackoffPolicy(initial_seconds=0.0, max_attempts=3)
        attempts = []

        def always_fails():
            attempts.append(1)
            raise ValueError("persistent")

        with pytest.raises(ValueError, match="persistent"):
            retry_call(always_fails, policy, sleep=lambda _: None)
        assert len(attempts) == 3

    def test_non_matching_exception_not_retried(self):
        policy = BackoffPolicy(max_attempts=5)
        attempts = []

        def wrong_kind():
            attempts.append(1)
            raise KeyError("nope")

        with pytest.raises(KeyError):
            retry_call(wrong_kind, policy, retry_on=(OSError,),
                       sleep=lambda _: None)
        assert len(attempts) == 1


class TestCircuitBreaker:
    def _breaker(self, clock, threshold=3, recovery=5.0):
        return CircuitBreaker(
            name="test", failure_threshold=threshold,
            recovery_seconds=recovery, clock=clock,
        )

    def test_opens_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            with pytest.raises(RuntimeError):
                breaker.call(self._boom)
        assert breaker.state == "open"
        with pytest.raises(CircuitOpen):
            breaker.call(lambda: "never runs")
        assert breaker.rejected_count == 1

    def test_success_resets_the_failure_streak(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(2):
            with pytest.raises(RuntimeError):
                breaker.call(self._boom)
        breaker.call(lambda: "fine")
        assert breaker.consecutive_failures == 0
        assert breaker.state == "closed"

    def test_half_open_probe_closes_on_success(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            with pytest.raises(RuntimeError):
                breaker.call(self._boom)
        clock.advance(5.0)
        assert breaker.call(lambda: "recovered") == "recovered"
        assert breaker.state == "closed"

    def test_half_open_probe_reopens_on_failure(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            with pytest.raises(RuntimeError):
                breaker.call(self._boom)
        clock.advance(5.0)
        with pytest.raises(RuntimeError):
            breaker.call(self._boom)  # the probe itself fails
        assert breaker.state == "open"
        assert breaker.open_count == 2
        # And it stays open for a fresh recovery window.
        clock.advance(4.9)
        with pytest.raises(CircuitOpen):
            breaker.call(lambda: "still too early")

    def test_snapshot_shape(self):
        breaker = self._breaker(FakeClock())
        snap = breaker.snapshot()
        assert snap["state"] == "closed"
        assert snap["failure_threshold"] == 3

    @staticmethod
    def _boom():
        raise RuntimeError("mod down")
