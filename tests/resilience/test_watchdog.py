"""Slide watchdog: stall detection, backoff-limited intervention."""

import pytest

from repro.resilience.retry import BackoffPolicy
from repro.resilience.watchdog import SlideWatchdog


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_watchdog(clock, timeout=10.0, max_attempts=3):
    stalls = []
    watchdog = SlideWatchdog(
        timeout_seconds=timeout,
        on_stall=lambda query_time, elapsed: stalls.append(
            (query_time, elapsed)
        ),
        backoff=BackoffPolicy(
            initial_seconds=5.0, multiplier=2.0, max_seconds=60.0,
            max_attempts=max_attempts,
        ),
        clock=clock,
    )
    return watchdog, stalls


class TestSlideWatchdog:
    def test_no_stall_while_idle_or_fast(self):
        clock = FakeClock()
        watchdog, stalls = make_watchdog(clock)
        assert not watchdog.check()  # nothing running
        watchdog.slide_started(1800)
        clock.now = 5.0
        assert not watchdog.check()  # under the deadline
        watchdog.slide_finished()
        clock.now = 100.0
        assert not watchdog.check()  # finished slides can't stall
        assert stalls == []
        assert watchdog.slides_seen == 1

    def test_overrun_fires_with_query_time_and_elapsed(self):
        clock = FakeClock()
        watchdog, stalls = make_watchdog(clock)
        watchdog.slide_started(3600)
        clock.now = 12.0
        assert watchdog.check()
        assert stalls == [(3600, 12.0)]
        assert watchdog.stalls_detected == 1

    def test_persisting_stall_refires_on_backoff_schedule(self):
        clock = FakeClock()
        watchdog, stalls = make_watchdog(clock)
        watchdog.slide_started(3600)
        clock.now = 10.0
        assert watchdog.check()       # fire 1; next at +5s
        clock.now = 12.0
        assert not watchdog.check()   # inside the backoff window
        clock.now = 15.0
        assert watchdog.check()       # fire 2; next at +10s
        clock.now = 20.0
        assert not watchdog.check()
        clock.now = 25.0
        assert watchdog.check()       # fire 3: budget spent
        clock.now = 500.0
        assert not watchdog.check()   # still counted, no more kills
        assert watchdog.stalls_detected == 4
        assert watchdog.interventions == 3

    def test_new_slide_resets_the_intervention_budget(self):
        clock = FakeClock()
        watchdog, stalls = make_watchdog(clock, max_attempts=1)
        watchdog.slide_started(3600)
        clock.now = 11.0
        assert watchdog.check()
        watchdog.slide_finished()
        watchdog.slide_started(5400)
        clock.now = 25.0
        assert watchdog.check()
        assert len(stalls) == 2

    def test_on_stall_errors_are_contained(self):
        clock = FakeClock()
        watchdog = SlideWatchdog(
            timeout_seconds=1.0,
            on_stall=lambda *_: (_ for _ in ()).throw(RuntimeError("boom")),
            clock=clock,
        )
        watchdog.slide_started(60)
        clock.now = 2.0
        assert watchdog.check()  # the callback error must not propagate

    def test_timeout_validation(self):
        with pytest.raises(ValueError):
            SlideWatchdog(timeout_seconds=0)
