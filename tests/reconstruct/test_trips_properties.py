"""Property-based tests for trip segmentation."""

from hypothesis import given, strategies as st

from repro.geo.polygon import GeoPolygon
from repro.reconstruct.trips import TripSegmenter
from repro.simulator.world import Port
from repro.tracking.types import CriticalPoint, MovementEventType

PORTS = [
    Port("alpha", 23.0, 38.0, GeoPolygon.rectangle("pa", 23.0, 38.0, 3000, 3000)),
    Port("beta", 24.0, 38.0, GeoPolygon.rectangle("pb", 24.0, 38.0, 3000, 3000)),
]

# Random critical points: some at ports (stops), some at sea.
point_strategy = st.tuples(
    st.sampled_from(["alpha", "beta", "sea"]),
    st.booleans(),  # whether a stop annotation is attached
    st.integers(min_value=0, max_value=100_000),
)


def materialize(raw):
    points = []
    for location, is_stop, timestamp in raw:
        if location == "alpha":
            lon, lat = 23.0, 38.0
        elif location == "beta":
            lon, lat = 24.0, 38.0
        else:
            lon, lat = 23.5, 38.5
        kind = (
            MovementEventType.STOP_END if is_stop else MovementEventType.TURN
        )
        points.append(
            CriticalPoint(
                mmsi=1,
                lon=lon,
                lat=lat,
                timestamp=timestamp,
                annotations=frozenset({kind}),
            )
        )
    return points


class TestSegmentationProperties:
    @given(raw=st.lists(point_strategy, max_size=60))
    def test_no_point_invented_and_anchors_shared_once(self, raw):
        points = materialize(raw)
        segmenter = TripSegmenter(PORTS)
        trips, residue = segmenter.segment(points)
        covered = sum(trip.point_count for trip in trips) + len(residue)
        # Points are never invented: coverage can exceed the input only by
        # the shared trip-boundary anchors (one per trip at most), and
        # points absorbed into pier dwell may be dropped.
        assert covered <= len(points) + len(trips)
        input_keys = {(p.timestamp, p.lon, p.lat) for p in points}
        for trip in trips:
            for point in trip.points:
                assert (point.timestamp, point.lon, point.lat) in input_keys
        for point in residue:
            assert (point.timestamp, point.lon, point.lat) in input_keys

    @given(raw=st.lists(point_strategy, max_size=60))
    def test_trips_are_time_ordered_and_contiguous(self, raw):
        points = materialize(raw)
        trips, _ = TripSegmenter(PORTS).segment(points)
        for trip in trips:
            times = [p.timestamp for p in trip.points]
            assert times == sorted(times)
        for before, after in zip(trips, trips[1:]):
            assert before.end_time <= after.start_time

    @given(raw=st.lists(point_strategy, max_size=60))
    def test_every_trip_ends_at_its_destination_port(self, raw):
        points = materialize(raw)
        segmenter = TripSegmenter(PORTS)
        trips, _ = segmenter.segment(points)
        for trip in trips:
            last = trip.points[-1]
            assert segmenter.port_of_stop(last) == trip.destination_port

    @given(raw=st.lists(point_strategy, max_size=60))
    def test_origin_chain_is_consistent(self, raw):
        # Each trip's origin is the previous trip's destination (or the
        # port of an intervening pier-drift reset); it is never a port the
        # vessel was not at.
        points = materialize(raw)
        trips, _ = TripSegmenter(PORTS).segment(points)
        for _before, after in zip(trips, trips[1:]):
            if after.origin_port is not None:
                assert after.origin_port in {"alpha", "beta"}

    @given(raw=st.lists(point_strategy, max_size=60))
    def test_distance_is_non_negative_and_polyline_additive(self, raw):
        points = materialize(raw)
        trips, _ = TripSegmenter(PORTS).segment(points)
        for trip in trips:
            assert trip.distance_meters >= 0.0
            assert trip.travel_time_seconds >= 0
