"""Tests for trip segmentation and semantic enrichment."""

import pytest

from repro.geo.polygon import GeoPolygon
from repro.reconstruct.trips import Trip, TripSegmenter
from repro.simulator.world import Port
from repro.tracking.types import CriticalPoint, MovementEventType

PORT_A = Port("alpha", 23.0, 38.0, GeoPolygon.rectangle("pa", 23.0, 38.0, 3000, 3000))
PORT_B = Port("beta", 24.0, 38.0, GeoPolygon.rectangle("pb", 24.0, 38.0, 3000, 3000))


def stop_at(port, timestamp, mmsi=1):
    return CriticalPoint(
        mmsi=mmsi,
        lon=port.lon,
        lat=port.lat,
        timestamp=timestamp,
        annotations=frozenset({MovementEventType.STOP_END}),
        duration_seconds=600,
    )


def waypoint(lon, timestamp, mmsi=1, kind=MovementEventType.TURN):
    return CriticalPoint(
        mmsi=mmsi,
        lon=lon,
        lat=38.0,
        timestamp=timestamp,
        annotations=frozenset({kind}),
    )


@pytest.fixture()
def segmenter():
    return TripSegmenter([PORT_A, PORT_B])


class TestPortOfStop:
    def test_inside_port(self, segmenter):
        assert segmenter.port_of_stop(stop_at(PORT_A, 0)) == "alpha"

    def test_open_sea(self, segmenter):
        assert segmenter.port_of_stop(waypoint(23.5, 0)) is None


class TestSegmentation:
    def test_voyage_between_distinct_ports(self, segmenter):
        points = [
            stop_at(PORT_A, 0),
            waypoint(23.3, 1000),
            waypoint(23.6, 2000),
            stop_at(PORT_B, 3000),
        ]
        trips, residue = segmenter.segment(points)
        assert len(trips) == 1
        trip = trips[0]
        assert trip.origin_port == "alpha"
        assert trip.destination_port == "beta"
        assert trip.point_count == 4
        assert residue == []

    def test_unknown_origin_trip(self, segmenter):
        # Tracking starts mid-voyage: the first port call closes a trip
        # with unknown origin (if long enough).
        points = [
            waypoint(23.3, 0),
            waypoint(23.6, 1000),
            stop_at(PORT_B, 2000),
        ]
        trips, residue = segmenter.segment(points)
        assert len(trips) == 1
        assert trips[0].origin_port is None
        assert trips[0].destination_port == "beta"

    def test_pier_drift_not_a_trip(self, segmenter):
        # Repeated stops at the same port with negligible movement.
        points = [
            stop_at(PORT_A, 0),
            stop_at(PORT_A, 1000),
            stop_at(PORT_A, 2000),
        ]
        trips, residue = segmenter.segment(points)
        assert trips == []

    def test_round_trip_same_port_counts_when_long(self, segmenter):
        # Out and back to the same port covering > 5 km each way.
        points = [
            stop_at(PORT_A, 0),
            waypoint(23.2, 1000),
            waypoint(23.4, 2000),  # ~35 km out
            waypoint(23.2, 3000),
            stop_at(PORT_A, 4000),
        ]
        trips, _ = segmenter.segment(points)
        assert len(trips) == 1
        assert trips[0].origin_port == "alpha"
        assert trips[0].destination_port == "alpha"

    def test_open_ended_residue(self, segmenter):
        points = [
            stop_at(PORT_A, 0),
            waypoint(23.3, 1000),
            waypoint(23.6, 2000),
        ]
        trips, residue = segmenter.segment(points)
        assert trips == []
        # The residue keeps everything, awaiting a destination port.
        assert len(residue) == 3

    def test_two_voyages(self, segmenter):
        points = [
            stop_at(PORT_A, 0),
            waypoint(23.5, 1000),
            stop_at(PORT_B, 2000),
            waypoint(23.5, 3000),
            stop_at(PORT_A, 4000),
        ]
        trips, residue = segmenter.segment(points)
        assert [(t.origin_port, t.destination_port) for t in trips] == [
            ("alpha", "beta"),
            ("beta", "alpha"),
        ]
        assert residue == []

    def test_unordered_input_sorted(self, segmenter):
        points = [
            stop_at(PORT_B, 3000),
            stop_at(PORT_A, 0),
            waypoint(23.5, 1500),
        ]
        trips, _ = segmenter.segment(points)
        assert len(trips) == 1
        assert trips[0].start_time == 0

    def test_empty_input(self, segmenter):
        assert segmenter.segment([]) == ([], [])

    def test_non_port_stops_do_not_split(self, segmenter):
        # A stop in open sea (e.g. anchorage) does not end a trip.
        anchorage = CriticalPoint(
            mmsi=1,
            lon=23.5,
            lat=38.3,
            timestamp=1500,
            annotations=frozenset({MovementEventType.STOP_END}),
        )
        points = [
            stop_at(PORT_A, 0),
            anchorage,
            stop_at(PORT_B, 3000),
        ]
        trips, _ = segmenter.segment(points)
        assert len(trips) == 1
        assert trips[0].point_count == 3


class TestTripProperties:
    def test_metrics(self):
        trip = Trip(
            mmsi=1,
            origin_port="alpha",
            destination_port="beta",
            points=[
                waypoint(23.0, 0),
                waypoint(23.5, 1800),
                waypoint(24.0, 3600),
            ],
        )
        assert trip.start_time == 0
        assert trip.end_time == 3600
        assert trip.travel_time_seconds == 3600
        assert trip.point_count == 3
        assert trip.distance_meters == pytest.approx(87_700, rel=0.05)
