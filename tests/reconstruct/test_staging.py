"""Tests for the staging area."""

from repro.reconstruct.staging import StagingArea
from repro.tracking.types import CriticalPoint, MovementEventType


def make_point(mmsi, timestamp):
    return CriticalPoint(
        mmsi=mmsi,
        lon=24.0,
        lat=38.0,
        timestamp=timestamp,
        annotations=frozenset({MovementEventType.TURN}),
    )


class TestStaging:
    def test_stage_and_count(self):
        staging = StagingArea()
        assert staging.stage([make_point(1, 10), make_point(2, 20)]) == 2
        assert staging.pending_count() == 2
        assert sorted(staging.vessels()) == [1, 2]

    def test_peek_is_ordered_and_non_destructive(self):
        staging = StagingArea()
        staging.stage([make_point(1, 30), make_point(1, 10)])
        peeked = staging.peek(1)
        assert [p.timestamp for p in peeked] == [10, 30]
        assert staging.pending_count() == 2

    def test_drain_single_vessel(self):
        staging = StagingArea()
        staging.stage([make_point(1, 10), make_point(2, 20)])
        drained = staging.drain(1)
        assert list(drained) == [1]
        assert staging.pending_count() == 1
        assert staging.total_drained == 1

    def test_drain_all(self):
        staging = StagingArea()
        staging.stage([make_point(1, 10), make_point(2, 20)])
        drained = staging.drain()
        assert sorted(drained) == [1, 2]
        assert staging.pending_count() == 0

    def test_drain_unknown_vessel(self):
        staging = StagingArea()
        assert staging.drain(99) == {}

    def test_counters(self):
        staging = StagingArea()
        staging.stage([make_point(1, 10)])
        staging.stage([make_point(1, 20)])
        staging.drain()
        assert staging.total_staged == 2
        assert staging.total_drained == 2
