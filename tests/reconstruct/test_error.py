"""Tests for the trajectory approximation error (RMSE)."""

import pytest
from hypothesis import given, strategies as st

from repro.reconstruct.error import ApproximationError, fleet_rmse, trajectory_rmse
from repro.tracking import Compressor, MobilityTracker, TrackingParameters, WindowSpec
from repro.tracking.types import CriticalPoint, MovementEventType
from tests.tracking.helpers import TraceBuilder


def as_critical(position, kind=MovementEventType.TURN):
    return CriticalPoint(
        mmsi=position.mmsi,
        lon=position.lon,
        lat=position.lat,
        timestamp=position.timestamp,
        annotations=frozenset({kind}),
    )


class TestTrajectoryRmse:
    def test_zero_when_nothing_dropped(self):
        original = TraceBuilder().cruise(90.0, 10.0, 10).build()
        critical = [as_critical(p) for p in original]
        assert trajectory_rmse(original, critical) == pytest.approx(0.0, abs=1e-6)

    def test_zero_on_straight_line_with_endpoints_only(self):
        # Linear interpolation between endpoints reproduces a constant-
        # velocity straight course exactly.
        original = TraceBuilder().cruise(90.0, 10.0, 20).build()
        critical = [as_critical(original[0]), as_critical(original[-1])]
        assert trajectory_rmse(original, critical) < 2.0

    def test_error_grows_when_corner_dropped(self):
        # Keeping only the endpoints of an L-shaped course cuts the corner.
        original = (
            TraceBuilder().cruise(90.0, 10.0, 10).cruise(0.0, 10.0, 10).build()
        )
        endpoints_only = [as_critical(original[0]), as_critical(original[-1])]
        with_corner = endpoints_only[:1] + [as_critical(original[10])] + endpoints_only[1:]
        assert trajectory_rmse(original, with_corner) < 10.0
        assert trajectory_rmse(original, endpoints_only) > 500.0

    def test_empty_inputs_rejected(self):
        original = TraceBuilder().cruise(90.0, 10.0, 3).build()
        with pytest.raises(ValueError, match="original"):
            trajectory_rmse([], [as_critical(original[0])])
        with pytest.raises(ValueError, match="critical"):
            trajectory_rmse(original, [])

    def test_duplicate_critical_timestamps_tolerated(self):
        original = TraceBuilder().cruise(90.0, 10.0, 5).build()
        critical = [
            as_critical(original[0]),
            as_critical(original[2]),
            as_critical(original[2], kind=MovementEventType.SPEED_CHANGE),
            as_critical(original[-1]),
        ]
        value = trajectory_rmse(original, critical)
        assert value >= 0.0

    @given(keep_every=st.integers(min_value=2, max_value=8))
    def test_rmse_non_negative(self, keep_every):
        original = (
            TraceBuilder().cruise(90.0, 12.0, 12).cruise(45.0, 12.0, 12).build()
        )
        critical = [as_critical(p) for p in original[::keep_every]]
        assert trajectory_rmse(original, critical) >= 0.0

    def test_monotone_in_compression_aggressiveness(self):
        # Wider turn thresholds keep fewer points and lose more accuracy —
        # the Figure 8 trend.
        builder = TraceBuilder().cruise(90.0, 12.0, 10)
        for step in range(12):
            builder.cruise(90.0 - 7.0 * (step + 1), 12.0, 2)
        original = builder.build()

        def rmse_for(threshold):
            tracker = MobilityTracker(
                TrackingParameters(turn_threshold_degrees=threshold)
            )
            events = tracker.process_batch(original) + tracker.finalize()
            compressor = Compressor(WindowSpec.of_hours(24, 1))
            fresh, _ = compressor.slide(events, original[-1].timestamp)
            anchors = [as_critical(original[0])] + fresh + [as_critical(original[-1])]
            return trajectory_rmse(original, anchors)

        assert rmse_for(5.0) <= rmse_for(20.0) + 1.0


class TestFleetRmse:
    def test_aggregates_per_vessel(self):
        trace_a = TraceBuilder(mmsi=1).cruise(90.0, 10.0, 10).build()
        trace_b = TraceBuilder(mmsi=2).cruise(0.0, 10.0, 10).build()
        originals = {1: trace_a, 2: trace_b}
        synopses = {
            1: [as_critical(trace_a[0]), as_critical(trace_a[-1])],
            2: [as_critical(trace_b[0]), as_critical(trace_b[-1])],
        }
        error = fleet_rmse(originals, synopses)
        assert set(error.per_vessel_rmse) == {1, 2}
        assert error.average <= error.maximum

    def test_vessels_without_synopsis_skipped(self):
        trace = TraceBuilder(mmsi=1).cruise(90.0, 10.0, 5).build()
        error = fleet_rmse({1: trace, 2: trace}, {1: [as_critical(trace[0])]})
        assert set(error.per_vessel_rmse) == {1}

    def test_empty_fleet(self):
        error = ApproximationError({})
        assert error.average == 0.0
        assert error.maximum == 0.0
