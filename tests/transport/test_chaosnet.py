"""Chaosnet specifics: partitions, seeded delays, fault sites, and the
pass-through contract (an unarmed chaos wrapper must be invisible)."""

import asyncio
import time

import pytest

from repro import obs
from repro.resilience import faults
from repro.resilience.faults import SITES, UNSEEDED_SITES, FaultPlan
from repro.transport import available_transports, create_transport
from repro.transport.base import TransportError
from repro.transport.chaosnet import (
    ChaosNetTransport,
    ChaosProfile,
    clear_partitions,
    heal,
    is_severed,
    sever,
)
from repro.transport.httpforward import HttpForwardTransport
from repro.transport.tcp import CLIENT_READ_LIMIT, TcpTransport


@pytest.fixture(autouse=True)
def clean_network():
    """Every test starts and ends with an unsevered network."""
    clear_partitions()
    yield
    clear_partitions()


async def _collector_server(transport):
    """An ingest server collecting every received line."""
    received: list[str] = []

    async def handle(reader, writer):
        session = await transport.accept(reader, writer, "ingest")
        if session is None:
            writer.close()
            return
        while True:
            line = await session.receive()
            if line is None:
                break
            received.append(line)
        await session.close()

    server = await asyncio.start_server(
        handle, "127.0.0.1", 0, limit=CLIENT_READ_LIMIT
    )
    return server, server.sockets[0].getsockname()[1], received


class TestRegistration:
    def test_chaos_variants_are_registered(self):
        names = available_transports()
        for name in ("chaos+tcp", "chaos+websocket", "chaos+http"):
            assert name in names
            assert create_transport(name).name == name

    def test_transport_extras_pass_through(self):
        """chaos+http keeps the HTTP transport's resume extra — the
        wrapper must not cost a transport any of its surface."""
        transport = create_transport("chaos+http")
        transport.set_feed_resume(7)
        assert transport.inner._feed_resume == 7

    def test_unknown_inner_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            create_transport("chaos+tcp").no_such_extra


class TestChaosProfile:
    def test_same_seed_same_delays(self):
        a = ChaosProfile(latency_seconds=0.01, jitter_seconds=0.02, seed=42)
        b = ChaosProfile(latency_seconds=0.01, jitter_seconds=0.02, seed=42)
        delays = [a.delay_seconds() for _ in range(16)]
        assert delays == [b.delay_seconds() for _ in range(16)]
        assert all(0.01 <= d <= 0.03 for d in delays)
        assert len(set(delays)) > 1, "jitter must actually vary"

    def test_zero_profile_costs_nothing(self):
        assert ChaosProfile().delay_seconds() == 0.0

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            ChaosProfile(latency_seconds=-0.1)

    def test_latency_is_applied_per_send(self):
        async def run():
            transport = ChaosNetTransport(
                TcpTransport(), ChaosProfile(latency_seconds=0.02)
            )
            server, port, received = await _collector_server(transport)
            session = await transport.connect("127.0.0.1", port, "ingest")
            started = time.perf_counter()
            await session.send("delayed")
            elapsed = time.perf_counter() - started
            await session.close()
            server.close()
            await server.wait_closed()
            return elapsed

        assert asyncio.run(run()) >= 0.02


class TestPartitions:
    def test_sever_heal_is_severed(self):
        sever("10.0.0.1", 4000)
        assert is_severed("10.0.0.1", 4000)
        assert not is_severed("10.0.0.1", 4001)
        heal("10.0.0.1", 4000)
        assert not is_severed("10.0.0.1", 4000)

    def test_auto_heal_deadline(self):
        sever("10.0.0.2", 4000, for_seconds=0.02)
        assert is_severed("10.0.0.2", 4000)
        time.sleep(0.03)
        assert not is_severed("10.0.0.2", 4000)

    def test_dial_to_severed_endpoint_fails_counted(self):
        async def run():
            with obs.activate(obs.MetricsRegistry()) as registry:
                sever("127.0.0.1", 1)
                transport = create_transport("chaos+tcp")
                with pytest.raises(TransportError, match="partitioned"):
                    await transport.connect("127.0.0.1", 1, "ingest")
                return registry.counter("chaosnet.dials_partitioned").value

        assert asyncio.run(run()) == 1

    def test_live_session_blocked_then_healed(self):
        """A partition bites sends on already-open sessions too, and a
        heal restores them — the exact path the gateway links redial."""
        async def run():
            transport = ChaosNetTransport(TcpTransport())
            server, port, received = await _collector_server(transport)
            session = await transport.connect("127.0.0.1", port, "ingest")
            await session.send("before")
            sever("127.0.0.1", port)
            with obs.activate(obs.MetricsRegistry()) as registry:
                with pytest.raises(TransportError, match="partitioned"):
                    await session.send("during")
                blocked = registry.counter("chaosnet.sends_partitioned").value
            heal("127.0.0.1", port)
            await session.send("after")
            await session.close()
            while len(received) < 2:
                await asyncio.sleep(0.005)
            server.close()
            await server.wait_closed()
            return received, blocked

        received, blocked = asyncio.run(run())
        assert received == ["before", "after"]
        assert blocked == 1

    def test_accepted_sessions_are_not_partition_checked(self):
        """The partition is enforced at the dialing side; a server-side
        session keeps flushing what it already holds (a real partition
        would surface as its peer going quiet, not as local errors)."""
        async def run():
            transport = ChaosNetTransport(TcpTransport())
            server, port, received = await _collector_server(transport)
            session = await transport.connect("127.0.0.1", port, "ingest")
            await session.send("in-flight")
            await session.close()
            while not received:
                await asyncio.sleep(0.005)
            server.close()
            await server.wait_closed()
            return received

        assert asyncio.run(run()) == ["in-flight"]


class TestFaultSites:
    def test_injected_dial_failure(self):
        async def run():
            transport = ChaosNetTransport(TcpTransport())
            server, port, _ = await _collector_server(transport)
            plan = FaultPlan.from_spec("chaosnet.connect:drop@1")
            with faults.inject(plan):
                with pytest.raises(TransportError, match="dial"):
                    await transport.connect("127.0.0.1", port, "ingest")
                session = await transport.connect("127.0.0.1", port, "ingest")
            await session.close()
            server.close()
            await server.wait_closed()

        asyncio.run(run())

    def test_injected_send_and_receive_failures(self):
        async def run():
            transport = ChaosNetTransport(TcpTransport())
            server, port, received = await _collector_server(transport)
            session = await transport.connect("127.0.0.1", port, "ingest")
            plan = FaultPlan.from_spec("chaosnet.send:drop@1")
            with faults.inject(plan):
                with pytest.raises(TransportError, match="send"):
                    await session.send("dropped")
                await session.send("retried")
            plan = FaultPlan.from_spec("chaosnet.receive:drop@1")
            with faults.inject(plan):
                with pytest.raises(TransportError, match="receive"):
                    await session.receive()
            await session.close()
            while not received:
                await asyncio.sleep(0.005)
            server.close()
            await server.wait_closed()
            return received

        assert asyncio.run(run()) == ["retried"]

    def test_partition_site_severs_with_auto_heal(self):
        """The ``chaosnet.partition`` site turns one dial into a timed
        partition of that endpoint — how ``--chaos`` stages a drill."""
        async def run():
            transport = ChaosNetTransport(TcpTransport())
            server, port, _ = await _collector_server(transport)
            plan = FaultPlan.from_spec("chaosnet.partition:drop@1:0.05")
            with faults.inject(plan):
                with pytest.raises(TransportError, match="partition"):
                    await transport.connect("127.0.0.1", port, "ingest")
                assert is_severed("127.0.0.1", port)
                # Subsequent dials fail on the partition itself.
                with pytest.raises(TransportError, match="partitioned"):
                    await transport.connect("127.0.0.1", port, "ingest")
            await asyncio.sleep(0.06)
            assert not is_severed("127.0.0.1", port)
            session = await transport.connect("127.0.0.1", port, "ingest")
            await session.close()
            server.close()
            await server.wait_closed()

        asyncio.run(run())


class TestSiteRegistry:
    def test_chaosnet_sites_are_declared(self):
        for site in ("chaosnet.connect", "chaosnet.send",
                     "chaosnet.receive", "chaosnet.partition"):
            assert site in SITES

    def test_partition_site_is_excluded_from_seeded_plans(self):
        """A blind seeded plan must never sever an endpoint for good —
        a permanent partition would stall any smoke run."""
        assert "chaosnet.partition" in UNSEEDED_SITES
        assert UNSEEDED_SITES <= SITES.keys()
        seedable = faults.seedable_sites()
        assert "chaosnet.partition" not in seedable
        assert "chaosnet.connect" in seedable
