"""The transport conformance suite.

Every adapter in the registry — present and future — must move discrete
text messages with boundaries and bytes preserved exactly, in both the
``ingest`` (client→server) and ``feed`` (server→client) direction.  The
suite is parameterized over :func:`available_transports`, so registering
a new transport automatically holds it to the same contract.
"""

import asyncio

import pytest

from repro.transport import available_transports, create_transport
from repro.transport.tcp import CLIENT_READ_LIMIT

#: Messages every transport must carry untouched: plain NMEA, JSON with
#: separators, the empty message, unicode outside latin-1, and a line
#: two orders of magnitude past the default 64 KiB stream limit.
MESSAGES = [
    "!AIVDM,1,1,,A,13u?etPv2;0n:dDPwUM1U1Cb069D,0*24",
    '{"type":"slide","query_time":60,"alerts":[]}',
    "",
    "tab\tseparated\tfields",
    "ünïcødé ✓ 海事監視",
    "x" * 262144,
]


@pytest.fixture(params=available_transports())
def transport(request):
    return create_transport(request.param)


def _base_name(transport) -> str:
    """The wrapped wire protocol: chaos variants inherit its contract
    (an unarmed chaos wrapper is a pure pass-through)."""
    return transport.name.removeprefix("chaos+")


async def _serve(handler):
    server = await asyncio.start_server(
        handler, "127.0.0.1", 0, limit=CLIENT_READ_LIMIT
    )
    return server, server.sockets[0].getsockname()[1]


async def _ingest_roundtrip(transport, messages):
    """Client sends ``messages`` over an ingest session; returns what the
    server-side session yielded."""
    received: list[str] = []
    done = asyncio.Event()

    async def handle(reader, writer):
        session = await transport.accept(reader, writer, "ingest")
        if session is None:
            writer.close()
            return
        while True:
            line = await session.receive()
            if line is None:
                break
            received.append(line)
        await session.close()
        done.set()

    server, port = await _serve(handle)
    client = await transport.connect("127.0.0.1", port, "ingest")
    for message in messages:
        await client.send(message)
    await client.close()
    await asyncio.wait_for(done.wait(), 10)
    server.close()
    await server.wait_closed()
    return received


async def _feed_roundtrip(transport, messages):
    """Server sends ``messages`` over a feed session; returns what the
    client-side session yielded."""

    async def handle(reader, writer):
        session = await transport.accept(reader, writer, "feed")
        if session is None:
            writer.close()
            return
        for message in messages:
            await session.send(message)
        await session.close()

    server, port = await _serve(handle)
    client = await transport.connect("127.0.0.1", port, "feed")
    received = []
    while True:
        line = await client.receive()
        if line is None:
            break
        received.append(line)
    await client.close()
    server.close()
    await server.wait_closed()
    return received


class TestConformance:
    def test_ingest_messages_roundtrip_exactly(self, transport):
        received = asyncio.run(_ingest_roundtrip(transport, MESSAGES))
        assert received == MESSAGES

    def test_feed_messages_roundtrip_exactly(self, transport):
        received = asyncio.run(_feed_roundtrip(transport, MESSAGES))
        assert received == MESSAGES

    def test_message_order_survives_volume(self, transport):
        messages = [f"line-{index:05d}" for index in range(1000)]
        assert asyncio.run(_ingest_roundtrip(transport, messages)) == messages

    def test_clean_goodbye_is_eof_not_error(self, transport):
        # A client that connects and hangs up without sending anything is
        # ordinary teardown: the server session sees end-of-stream.
        if _base_name(transport) == "http":
            pytest.skip("POST-batch ingest dials lazily: no lines, no socket")
        assert asyncio.run(_ingest_roundtrip(transport, [])) == []

    def test_connect_rejects_unknown_mode(self, transport):
        async def run():
            await transport.connect("127.0.0.1", 1, "broadcast")

        with pytest.raises(ValueError, match="mode"):
            asyncio.run(run())

    def test_garbage_handshake_yields_none_not_crash(self, transport):
        """A non-speaker of the protocol must be turned away as a counted
        handshake failure (``accept`` → ``None``), never an exception."""
        if _base_name(transport) == "tcp":
            pytest.skip("raw TCP has no handshake to fail")

        async def run():
            outcome: list = []
            done = asyncio.Event()

            async def handle(reader, writer):
                mode = "feed" if _base_name(transport) == "http" else "ingest"
                outcome.append(await transport.accept(reader, writer, mode))
                writer.close()
                done.set()

            server, port = await _serve(handle)
            _, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b"NOT A HANDSHAKE\r\n\r\n")
            await writer.drain()
            writer.close()
            await asyncio.wait_for(done.wait(), 10)
            server.close()
            await server.wait_closed()
            return outcome

        assert asyncio.run(run()) == [None]
