"""Transport registry: names to factories, mirrors the tracking backends."""

import pytest

from repro.transport import (
    DEFAULT_TRANSPORT,
    available_transports,
    create_transport,
    register,
)
from repro.transport.base import MODES, Transport, check_mode
from repro.transport.registry import _FACTORIES


class TestRegistry:
    def test_builtin_adapters_are_registered(self):
        assert set(available_transports()) >= {"tcp", "websocket", "http"}

    def test_names_are_sorted_for_stable_cli_help(self):
        names = available_transports()
        assert list(names) == sorted(names)

    def test_default_is_the_byte_compatible_tcp_wire(self):
        assert DEFAULT_TRANSPORT == "tcp"
        assert create_transport().name == "tcp"

    def test_every_name_instantiates_its_adapter(self):
        for name in available_transports():
            transport = create_transport(name)
            assert isinstance(transport, Transport)
            assert transport.name == name

    def test_unknown_name_lists_the_alternatives(self):
        with pytest.raises(ValueError, match="websocket"):
            create_transport("carrier-pigeon")

    def test_register_custom_factory(self):
        class NullTransport(Transport):
            name = "null"

            async def accept(self, reader, writer, mode):
                return None

            async def connect(self, host, port, mode):
                raise OSError("null transport never connects")

        register("null", NullTransport)
        try:
            assert "null" in available_transports()
            assert isinstance(create_transport("null"), NullTransport)
        finally:
            del _FACTORIES["null"]

    def test_register_rejects_empty_name(self):
        with pytest.raises(ValueError):
            register("", object)


class TestCheckMode:
    def test_accepts_both_directions(self):
        for mode in MODES:
            assert check_mode(mode) == mode

    def test_rejects_anything_else(self):
        with pytest.raises(ValueError, match="broadcast"):
            check_mode("broadcast")
