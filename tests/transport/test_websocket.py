"""WebSocket protocol specifics beyond the shared conformance contract:
the RFC 6455 handshake vector, control frames, fragmentation, and the
masking rules the server must enforce."""

import asyncio
import struct

import pytest

from repro.transport.base import TransportError
from repro.transport.tcp import CLIENT_READ_LIMIT
from repro.transport.websocket import (
    _OP_BINARY,
    _OP_CONT,
    _OP_PING,
    _OP_PONG,
    _OP_TEXT,
    WebSocketTransport,
    accept_key,
)


def test_accept_key_matches_the_rfc_6455_vector():
    # The worked example of RFC 6455 §1.3.
    assert (
        accept_key("dGhlIHNhbXBsZSBub25jZQ==")
        == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
    )


def _masked_frame(opcode: int, payload: bytes, fin: bool = True) -> bytes:
    """Hand-rolled client frame with a fixed mask (tests are deterministic)."""
    mask = b"\x01\x02\x03\x04"
    head = bytearray([(0x80 if fin else 0x00) | opcode])
    length = len(payload)
    if length < 126:
        head.append(0x80 | length)
    else:
        head.append(0x80 | 126)
        head += struct.pack("!H", length)
    body = bytes(b ^ mask[i % 4] for i, b in enumerate(payload))
    return bytes(head) + mask + body


async def _scenario(client_script, server_reads: int):
    """One upgraded connection; ``client_script(session)`` drives the
    client side while the server tries ``server_reads`` receives."""
    transport = WebSocketTransport()
    results: list = []
    done = asyncio.Event()

    async def handle(reader, writer):
        session = await transport.accept(reader, writer, "ingest")
        assert session is not None
        for _ in range(server_reads):
            try:
                results.append(await session.receive())
            except TransportError as exc:
                results.append(exc)
                break
        await session.close()
        done.set()

    server = await asyncio.start_server(
        handle, "127.0.0.1", 0, limit=CLIENT_READ_LIMIT
    )
    port = server.sockets[0].getsockname()[1]
    client = await transport.connect("127.0.0.1", port, "ingest")
    await client_script(client)
    await asyncio.wait_for(done.wait(), 10)
    await client.close()
    server.close()
    await server.wait_closed()
    return results


class TestControlFrames:
    def test_ping_is_answered_with_pong(self):
        async def script(client):
            client._write_frame(_OP_PING, b"heartbeat")
            await client.writer.drain()
            # The pong must come back before any application traffic.
            opcode, fin, payload = await client._read_frame()
            assert (opcode, fin, payload) == (_OP_PONG, True, b"heartbeat")
            await client.send("after-ping")

        results = asyncio.run(_scenario(script, server_reads=1))
        assert results == ["after-ping"]

    def test_close_is_echoed_and_surfaces_as_eof(self):
        async def script(client):
            await client.close()

        results = asyncio.run(_scenario(script, server_reads=1))
        assert results == [None]


class TestFraming:
    def test_fragmented_message_is_reassembled(self):
        async def script(client):
            client.writer.write(
                _masked_frame(_OP_TEXT, "mari".encode(), fin=False)
                + _masked_frame(_OP_CONT, "time".encode(), fin=True)
            )
            await client.writer.drain()

        assert asyncio.run(_scenario(script, server_reads=1)) == ["maritime"]

    def test_binary_frames_are_refused(self):
        async def script(client):
            client._write_frame(_OP_BINARY, b"\x00\x01")
            await client.writer.drain()

        (outcome,) = asyncio.run(_scenario(script, server_reads=1))
        assert isinstance(outcome, TransportError)

    def test_unmasked_client_frame_is_a_protocol_error(self):
        async def script(client):
            # RFC 6455 §5.1: the server MUST fail unmasked client frames.
            client.mask_outgoing = False
            await client.send("bare")

        (outcome,) = asyncio.run(_scenario(script, server_reads=1))
        assert isinstance(outcome, TransportError)

    def test_continuation_without_a_message_is_a_protocol_error(self):
        async def script(client):
            client.writer.write(_masked_frame(_OP_CONT, b"orphan", fin=True))
            await client.writer.drain()

        (outcome,) = asyncio.run(_scenario(script, server_reads=1))
        assert isinstance(outcome, TransportError)


class TestHandshake:
    def test_upgrade_refused_raises_client_side(self):
        async def run():
            # A plain TCP sink never answers 101.
            async def handle(reader, writer):
                await reader.read(1024)
                writer.write(b"HTTP/1.1 404 Not Found\r\n\r\n")
                await writer.drain()
                writer.close()

            server = await asyncio.start_server(handle, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                with pytest.raises(TransportError, match="refused"):
                    await WebSocketTransport().connect(
                        "127.0.0.1", port, "feed"
                    )
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(run())
