"""HTTP-forward specifics: POST batching, the retry budget, request
validation, and chunked-stream reassembly on the feed side."""

import asyncio

import pytest

from repro import obs
from repro.resilience.retry import BackoffPolicy
from repro.transport.base import TransportError
from repro.transport.httpforward import (
    MAX_BODY_BYTES,
    HttpForwardTransport,
)
from repro.transport.tcp import CLIENT_READ_LIMIT

FAST_RETRY = BackoffPolicy(
    initial_seconds=0.001, multiplier=1.0, max_seconds=0.001, max_attempts=3
)


async def _ingest_server(transport, received, errors):
    async def handle(reader, writer):
        session = await transport.accept(reader, writer, "ingest")
        try:
            while True:
                line = await session.receive()
                if line is None:
                    break
                received.append(line)
        except TransportError as exc:
            errors.append(exc)
        finally:
            await session.close()

    server = await asyncio.start_server(
        handle, "127.0.0.1", 0, limit=CLIENT_READ_LIMIT
    )
    return server, server.sockets[0].getsockname()[1]


async def _poll(predicate, timeout: float = 5.0) -> None:
    for _ in range(int(timeout / 0.005)):
        if predicate():
            return
        await asyncio.sleep(0.005)
    assert predicate(), "poll timed out"


class TestIngestBatching:
    def test_lines_flush_per_batch_and_on_close(self):
        async def run():
            transport = HttpForwardTransport(batch_lines=3)
            received: list[str] = []
            server, port = await _ingest_server(transport, received, [])
            client = await transport.connect("127.0.0.1", port, "ingest")
            for index in range(7):
                await client.send(f"line-{index}")
            # Two full batches are on the wire; the seventh line is still
            # buffered client-side until close() flushes it.
            await _poll(lambda: len(received) == 6)
            await client.close()
            await _poll(lambda: len(received) == 7)
            server.close()
            await server.wait_closed()
            return received

        assert asyncio.run(run()) == [f"line-{i}" for i in range(7)]

    def test_retry_budget_spent_drops_the_batch_counted(self):
        async def run():
            # A port that was listening and is not any more.
            probe = await asyncio.start_server(
                lambda r, w: None, "127.0.0.1", 0
            )
            port = probe.sockets[0].getsockname()[1]
            probe.close()
            await probe.wait_closed()

            transport = HttpForwardTransport(batch_lines=2, policy=FAST_RETRY)
            with obs.activate(obs.MetricsRegistry()) as registry:
                client = await transport.connect("127.0.0.1", port, "ingest")
                client._buffer = ["a", "b"]
                with pytest.raises(TransportError, match="dropped"):
                    await client.flush()
                return registry

        registry = asyncio.run(run())
        assert registry.counter("transport.http.post_attempts").value == 3
        assert registry.counter("transport.http.post_retries").value == 2
        assert registry.counter("transport.http.batches_dropped").value == 1
        assert registry.counter("transport.http.lines_dropped").value == 2

    def test_non_post_gets_405_and_the_connection_survives(self):
        async def run():
            transport = HttpForwardTransport()
            received: list[str] = []
            server, port = await _ingest_server(transport, received, [])
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b"GET /ingest HTTP/1.1\r\nContent-Length: 0\r\n\r\n")
            await writer.drain()
            status = (await reader.readline()).decode("ascii")
            assert " 405 " in status
            await reader.readuntil(b"\r\n\r\n")
            # Same connection, a proper POST: still accepted.
            body = b"recovered\n"
            writer.write(
                b"POST /ingest HTTP/1.1\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode("ascii")
                + body
            )
            await writer.drain()
            await _poll(lambda: received == ["recovered"])
            writer.close()
            server.close()
            await server.wait_closed()
            return received

        assert asyncio.run(run()) == ["recovered"]

    def test_oversized_body_is_a_protocol_error(self):
        async def run():
            transport = HttpForwardTransport()
            errors: list = []
            server, port = await _ingest_server(transport, [], errors)
            _, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(
                b"POST /ingest HTTP/1.1\r\n"
                + f"Content-Length: {MAX_BODY_BYTES + 1}\r\n\r\n".encode(
                    "ascii"
                )
            )
            await writer.drain()
            await _poll(lambda: len(errors) == 1)
            writer.close()
            server.close()
            await server.wait_closed()
            return errors

        (error,) = asyncio.run(run())
        assert "too large" in str(error)


class TestRetryThenRecover:
    def test_transient_refusal_is_retried_within_budget(self):
        """One aborted POST must not cost any lines: the batch is retried
        (counted) and delivered whole once the server behaves."""
        async def run():
            transport = HttpForwardTransport(batch_lines=2, policy=FAST_RETRY)
            received: list[str] = []
            aborted = []

            async def handle(reader, writer):
                if not aborted:
                    # First request: hang up before responding.
                    aborted.append(True)
                    await reader.readline()
                    writer.close()
                    return
                session = await transport.accept(reader, writer, "ingest")
                while True:
                    line = await session.receive()
                    if line is None:
                        break
                    received.append(line)
                await session.close()

            server = await asyncio.start_server(
                handle, "127.0.0.1", 0, limit=CLIENT_READ_LIMIT
            )
            port = server.sockets[0].getsockname()[1]
            with obs.activate(obs.MetricsRegistry()) as registry:
                client = await transport.connect("127.0.0.1", port, "ingest")
                await client.send("a")
                await client.send("b")  # second line flushes the batch
                await client.close()
            await _poll(lambda: len(received) == 2)
            server.close()
            await server.wait_closed()
            return received, registry

        received, registry = asyncio.run(run())
        assert received == ["a", "b"]
        assert registry.counter("transport.http.post_retries").value == 1
        assert registry.counter("transport.http.batches_dropped").value == 0
        assert registry.counter("transport.http.lines_dropped").value == 0


class TestFeedResumeQuery:
    def test_accept_parses_the_resume_parameter(self):
        async def run():
            transport = HttpForwardTransport()
            seqs = []
            done = asyncio.Event()

            async def handle(reader, writer):
                session = await transport.accept(reader, writer, "feed")
                seqs.append(None if session is None else session.resume_seq)
                if session is not None:
                    await session.close()
                done.set()

            server = await asyncio.start_server(handle, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            for target in ("/feed?resume=5", "/feed", "/feed?resume=junk",
                           "/feed?resume=-3"):
                done.clear()
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                writer.write(
                    f"GET {target} HTTP/1.1\r\nHost: x\r\n\r\n".encode()
                )
                await writer.drain()
                await done.wait()
                writer.close()
            server.close()
            await server.wait_closed()
            return seqs

        # Parsed when valid; garbage and negatives fall back to a
        # classic unstamped subscription, never an error.
        assert asyncio.run(run()) == [5, None, None, None]

    def test_set_feed_resume_rides_the_request_line(self):
        async def run():
            requests = []

            async def handle(reader, writer):
                requests.append((await reader.readline()).decode("ascii"))
                writer.close()

            server = await asyncio.start_server(handle, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            transport = HttpForwardTransport()
            transport.set_feed_resume(17)
            try:
                session = await transport.connect("127.0.0.1", port, "feed")
                await session.close()
            except Exception:
                pass  # the stub server hangs up; only the request matters
            await _poll(lambda: requests)
            server.close()
            await server.wait_closed()
            return requests

        assert asyncio.run(run())[0].startswith("GET /feed?resume=17 ")

    def test_set_feed_resume_rejects_negatives(self):
        transport = HttpForwardTransport()
        with pytest.raises(ValueError):
            transport.set_feed_resume(-1)
        transport.set_feed_resume(None)  # restores plain subscription


class TestFeedChunking:
    def test_lines_reassemble_across_chunk_boundaries(self):
        """The client must tolerate any chunking of the line stream: a
        line split across chunks, and two lines packed into one chunk."""

        async def run():
            async def handle(reader, writer):
                await reader.readuntil(b"\r\n\r\n")
                writer.write(
                    b"HTTP/1.1 200 OK\r\n"
                    b"Transfer-Encoding: chunked\r\n\r\n"
                )

                def chunk(data: bytes) -> bytes:
                    return f"{len(data):x}\r\n".encode() + data + b"\r\n"

                writer.write(chunk(b"first-ha"))
                writer.write(chunk(b"lf\nsecond\nthi"))
                writer.write(chunk(b"rd\n"))
                writer.write(b"0\r\n\r\n")
                await writer.drain()
                writer.close()

            server = await asyncio.start_server(handle, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            client = await HttpForwardTransport().connect(
                "127.0.0.1", port, "feed"
            )
            lines = []
            while True:
                line = await client.receive()
                if line is None:
                    break
                lines.append(line)
            await client.close()
            server.close()
            await server.wait_closed()
            return lines

        assert asyncio.run(run()) == ["first-half", "second", "third"]
