"""Grid index correctness: brute-force parity and the awkward geometries.

The index is a prefilter, never an approximation — every test here pits
``SlideGridIndex`` against an exhaustive O(n^2) scan with the same exact
within-radius predicate and demands identical answers.
"""

import math
import random

import pytest

from repro.geo.haversine import haversine_meters
from repro.geo.polygon import BoundingBox
from repro.spatial.grid import SlideGridIndex, StaticBoxIndex, _within_radius

RADIUS = 3000.0


def brute_force_pairs(points: dict[int, tuple[float, float]], radius: float):
    """Reference answer: every pair, exact Haversine, sorted (a, b)."""
    keys = sorted(points)
    return [
        (a, b)
        for i, a in enumerate(keys)
        for b in keys[i + 1 :]
        if haversine_meters(*points[a], *points[b]) <= radius
    ]


def build(points: dict[int, tuple[float, float]], radius: float = RADIUS):
    index = SlideGridIndex(radius)
    for key, (lon, lat) in points.items():
        index.insert(key, lon, lat)
    return index


class TestWithinRadius:
    def test_matches_exact_haversine(self):
        rng = random.Random(7)
        for _ in range(500):
            lon1 = rng.uniform(-180.0, 180.0)
            lat1 = rng.uniform(-85.0, 85.0)
            lon2 = lon1 + rng.uniform(-0.1, 0.1)
            lat2 = lat1 + rng.uniform(-0.1, 0.1)
            exact = haversine_meters(lon1, lat1, lon2, lat2) <= RADIUS
            assert _within_radius(lon1, lat1, lon2, lat2, RADIUS) == exact

    def test_short_way_across_antimeridian(self):
        # 179.99W to 179.99E is ~2 km at the equator, not ~40000 km.
        assert _within_radius(-179.99, 0.0, 179.99, 0.0, RADIUS)
        assert not _within_radius(-179.0, 0.0, 179.0, 0.0, RADIUS)


class TestSlideGridIndex:
    def test_close_pairs_matches_brute_force_random_cluster(self):
        rng = random.Random(2015)
        points = {
            mmsi: (24.0 + rng.uniform(-0.2, 0.2), 37.5 + rng.uniform(-0.2, 0.2))
            for mmsi in range(200)
        }
        index = build(points)
        assert index.close_pairs() == brute_force_pairs(points, RADIUS)
        # O(n.k): the grid must have screened far fewer than n(n-1)/2.
        assert 0 < index.candidates_examined < 200 * 199 // 2

    def test_close_pairs_matches_brute_force_high_latitude(self):
        # Near 80N a longitude degree is ~6x shorter; the column span
        # widens and must still cover the radius.
        rng = random.Random(4)
        points = {
            mmsi: (10.0 + rng.uniform(-0.5, 0.5), 80.0 + rng.uniform(-0.1, 0.1))
            for mmsi in range(80)
        }
        assert build(points).close_pairs() == brute_force_pairs(points, RADIUS)

    def test_antimeridian_adjacent_cells(self):
        # Vessels straddling 180 degrees sit in columns that are grid
        # neighbours only because the column index wraps.
        points = {
            1: (179.995, 10.0),
            2: (-179.995, 10.0),  # ~1.1 km east of vessel 1
            3: (179.0, 10.0),  # over 100 km away
        }
        index = build(points)
        assert index.close_pairs() == [(1, 2)]
        assert index.near(-179.999, 10.0) == [1, 2]

    def test_empty_slide(self):
        index = SlideGridIndex(RADIUS)
        assert len(index) == 0
        assert index.close_pairs() == []
        assert index.candidates_examined == 0
        assert index.near(24.0, 37.5) == []

    def test_single_vessel(self):
        index = build({42: (24.0, 37.5)})
        assert index.close_pairs() == []
        assert index.near(24.0, 37.5) == [42]
        assert index.near(30.0, 37.5) == []

    def test_co_located_vessels(self):
        # Zero separation (same cell, same coordinates) must not divide
        # by zero or drop the pair; every pair is within any radius.
        points = {1: (24.0, 37.5), 2: (24.0, 37.5), 3: (24.0, 37.5)}
        index = build(points)
        assert index.close_pairs() == [(1, 2), (1, 3), (2, 3)]
        assert index.near(24.0, 37.5) == [1, 2, 3]

    def test_insertion_order_is_irrelevant(self):
        rng = random.Random(13)
        points = {
            mmsi: (24.0 + rng.uniform(-0.1, 0.1), 37.5 + rng.uniform(-0.1, 0.1))
            for mmsi in range(50)
        }
        forward = build(points)
        shuffled = SlideGridIndex(RADIUS)
        order = list(points)
        rng.shuffle(order)
        for key in order:
            shuffled.insert(key, *points[key])
        assert forward.close_pairs() == shuffled.close_pairs()

    def test_duplicate_key_rejected(self):
        index = build({1: (24.0, 37.5)})
        with pytest.raises(ValueError, match="duplicate key"):
            index.insert(1, 25.0, 38.0)

    def test_rejects_nonpositive_radius(self):
        with pytest.raises(ValueError):
            SlideGridIndex(0.0)

    def test_boundary_pair_exactly_at_radius(self):
        # A pair separated by almost exactly the radius: nudge one vessel
        # until the Haversine crosses the threshold and check both sides.
        lat = 37.5
        dlat_at_radius = math.degrees(RADIUS / 6_371_008.8)
        inside = build({1: (24.0, lat), 2: (24.0, lat + dlat_at_radius * 0.999)})
        outside = build({1: (24.0, lat), 2: (24.0, lat + dlat_at_radius * 1.001)})
        assert inside.close_pairs() == [(1, 2)]
        assert outside.close_pairs() == []


class TestStaticBoxIndex:
    def test_candidates_superset_in_insertion_order(self):
        boxes = [
            (0, BoundingBox(24.0, 37.0, 24.1, 37.1)),
            (1, BoundingBox(24.05, 37.05, 24.15, 37.15)),
            (2, BoundingBox(30.0, 40.0, 30.1, 40.1)),
        ]
        index = StaticBoxIndex(boxes)
        hits = index.candidates(24.07, 37.07)
        # Both overlapping boxes, original enumeration order, distant
        # box excluded.
        assert [k for k in hits if boxes[k][1].contains(24.07, 37.07)] == [0, 1]
        assert 2 not in hits
        assert index.candidates(0.0, 0.0) == []

    def test_never_misses_a_containing_box(self):
        rng = random.Random(99)
        boxes = []
        for key in range(40):
            lon = rng.uniform(20.0, 28.0)
            lat = rng.uniform(35.0, 40.0)
            boxes.append(
                (key, BoundingBox(lon, lat, lon + rng.uniform(0.01, 0.3),
                                  lat + rng.uniform(0.01, 0.3)))
            )
        index = StaticBoxIndex(boxes)
        for _ in range(300):
            lon = rng.uniform(19.0, 29.0)
            lat = rng.uniform(34.0, 41.0)
            hits = set(index.candidates(lon, lat))
            for key, box in boxes:
                if box.contains(lon, lat):
                    assert key in hits

    def test_empty_index(self):
        assert StaticBoxIndex([]).candidates(24.0, 37.5) == []
