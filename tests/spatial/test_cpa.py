"""CPA/TCPA kinematics against analytic ground truth."""

import math

import pytest

from repro.geo.haversine import EARTH_RADIUS_METERS, haversine_meters
from repro.spatial.cpa import closest_point_of_approach


def lat_offset(meters: float) -> float:
    return math.degrees(meters / EARTH_RADIUS_METERS)


class TestClosestPointOfApproach:
    def test_head_on_collision_course(self):
        # Two vessels 10 km apart on the same meridian, steaming directly
        # at each other at 5 m/s each: closing speed 10 m/s, so
        # tcpa = 1000 s and they meet (dcpa ~ 0).
        separation = 10_000.0
        tcpa, dcpa = closest_point_of_approach(
            24.0, 37.0, 5.0, 0.0,  # northbound
            24.0, 37.0 + lat_offset(separation), 5.0, 180.0,  # southbound
        )
        assert tcpa == pytest.approx(1000.0, rel=1e-3)
        assert dcpa == pytest.approx(0.0, abs=1.0)

    def test_parallel_same_velocity_never_closes(self):
        # Identical velocity: zero relative motion, tcpa pinned to 0 and
        # dcpa is just the current separation.
        separation = 2_000.0
        lat2 = 37.0 + lat_offset(separation)
        tcpa, dcpa = closest_point_of_approach(
            24.0, 37.0, 6.0, 90.0, 24.0, lat2, 6.0, 90.0
        )
        assert tcpa == 0.0
        assert dcpa == pytest.approx(
            haversine_meters(24.0, 37.0, 24.0, lat2), rel=1e-3
        )

    def test_crossing_perpendicular(self):
        # Vessel 2 starts 1 km north of a point that vessel 1 (eastbound,
        # 5 m/s) will reach in 800 s; vessel 2 is stationary.  Closest
        # approach is abeam: dcpa = 1 km at tcpa = 800 s.
        along = 4_000.0
        abeam = 1_000.0
        lon_per_meter = math.degrees(
            1.0 / (EARTH_RADIUS_METERS * math.cos(math.radians(37.0)))
        )
        tcpa, dcpa = closest_point_of_approach(
            24.0, 37.0, 5.0, 90.0,
            24.0 + along * lon_per_meter, 37.0 + lat_offset(abeam), 0.0, 0.0,
        )
        assert tcpa == pytest.approx(800.0, rel=1e-2)
        assert dcpa == pytest.approx(abeam, rel=1e-2)

    def test_diverging_pair_has_negative_tcpa(self):
        # Back to back at full speed: closest approach was in the past
        # (they were co-located 100 s ago at 10 m/s closing speed).
        tcpa, dcpa = closest_point_of_approach(
            24.0, 37.0, 5.0, 180.0,
            24.0, 37.0 + lat_offset(1_000.0), 5.0, 0.0,
        )
        assert tcpa == pytest.approx(-100.0, rel=1e-2)
        assert dcpa == pytest.approx(0.0, abs=1.0)

    def test_antimeridian_pair(self):
        # Straddling 180 degrees: the projected x-offset must take the
        # short way around, giving a sane (small) dcpa.
        tcpa, dcpa = closest_point_of_approach(
            179.99, 0.0, 0.0, 0.0, -179.99, 0.0, 0.0, 0.0
        )
        assert tcpa == 0.0
        assert dcpa == pytest.approx(
            haversine_meters(179.99, 0.0, -179.99, 0.0), rel=1e-3
        )
        assert dcpa < 3_000.0

    def test_deterministic(self):
        args = (24.01, 37.02, 4.5, 33.0, 24.03, 37.01, 6.2, 210.0)
        assert closest_point_of_approach(*args) == closest_point_of_approach(
            *args
        )
