"""Slide-metrics recording must not depend on dict insertion order.

The runtime's per-slide phase timings arrive as a dict whose insertion
order reflects execution interleaving — which can differ across shard
counts and runs.  Anything derived from iterating it (here: the order of
histogram observations) must go through ``sorted()`` so observability
output is byte-stable, the same discipline RPR005 enforces statically.
"""

from types import SimpleNamespace

from repro import obs
from repro.obs import MetricsRegistry
from repro.runtime.system import ParallelSurveillanceSystem


class RecordingRegistry(MetricsRegistry):
    """A registry that remembers the order of ``observe`` calls."""

    def __init__(self):
        super().__init__()
        self.observe_order = []

    def observe(self, name, value):
        self.observe_order.append(name)
        super().observe(name, value)


def _bare_system():
    """A system shell with just the attributes slide metrics touch."""
    system = ParallelSurveillanceSystem.__new__(ParallelSurveillanceSystem)
    system.compressor = SimpleNamespace(
        statistics=SimpleNamespace(compression_ratio=1.0)
    )
    system.config = SimpleNamespace(tracking_backend="array")
    system._vessels_tracked = 3
    system.shards = 2
    system.restart_count = lambda: 0
    return system


class TestPhaseObservationOrder:
    def test_phases_recorded_in_sorted_order(self):
        system = _bare_system()
        # Adversarial insertion order: reverse-alphabetical.
        timings = {"tracking": 0.3, "batch": 0.2, "alerting": 0.1}
        with obs.activate(RecordingRegistry()) as registry:
            system._record_slide_metrics(
                timings,
                raw_positions=10,
                movement_events=4,
                fresh=2,
                expired=1,
                recognized=1,
            )
        phases = [
            name for name in registry.observe_order
            if name.startswith("pipeline.phase.")
        ]
        assert phases == sorted(phases)
        assert phases == [
            "pipeline.phase.alerting",
            "pipeline.phase.batch",
            "pipeline.phase.tracking",
        ]

    def test_order_is_stable_across_insertion_orders(self):
        orders = []
        for keys in (("a", "b", "c"), ("c", "a", "b"), ("b", "c", "a")):
            system = _bare_system()
            timings = {key: 0.1 for key in keys}
            with obs.activate(RecordingRegistry()) as registry:
                system._record_slide_metrics(
                    timings,
                    raw_positions=0,
                    movement_events=0,
                    fresh=0,
                    expired=0,
                    recognized=0,
                )
            orders.append([
                name for name in registry.observe_order
                if name.startswith("pipeline.phase.")
            ])
        assert orders[0] == orders[1] == orders[2]
