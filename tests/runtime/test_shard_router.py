"""Routing invariants: lossless, order-preserving, deterministic."""

from repro.ais.stream import PositionalTuple
from repro.maritime.partition import partition_world
from repro.runtime.shard import ShardRouter, shard_for_mmsi
from repro.tracking.types import MovementEvent, MovementEventType


class TestShardForMmsi:
    def test_deterministic_across_calls(self):
        for mmsi in range(200_000_000, 200_000_500):
            assert shard_for_mmsi(mmsi, 4) == shard_for_mmsi(mmsi, 4)

    def test_in_range(self):
        for shards in (1, 2, 3, 4, 8):
            for mmsi in range(200_000_000, 200_001_000, 7):
                assert 0 <= shard_for_mmsi(mmsi, shards) < shards

    def test_spreads_sequential_mmsis(self):
        # Fleet MMSIs are near-sequential; the multiplicative hash must
        # not funnel them all into one shard.
        counts = [0, 0, 0, 0]
        for mmsi in range(200_000_000, 200_000_100):
            counts[shard_for_mmsi(mmsi, 4)] += 1
        assert min(counts) > 0

    def test_known_values_pinned(self):
        # Checkpoint compatibility: the hash is part of the on-disk
        # contract, so a silent change must fail a test.
        assert shard_for_mmsi(200_000_000, 4) == (
            (200_000_000 * 2654435761 & 0xFFFFFFFF) % 4
        )


class TestRoutePositions:
    def _batch(self, count=60):
        return [
            PositionalTuple(200_000_000 + (i % 7), 23.0 + i * 0.01, 38.0, i)
            for i in range(count)
        ]

    def test_partition_is_lossless(self, world):
        router = ShardRouter(world, 4)
        routed = router.route_positions(self._batch())
        indices = sorted(i for sub in routed for i, _ in sub)
        assert indices == list(range(60))

    def test_preserves_global_order_within_shard(self, world):
        router = ShardRouter(world, 4)
        for sub in router.route_positions(self._batch()):
            assert [i for i, _ in sub] == sorted(i for i, _ in sub)

    def test_same_vessel_same_shard(self, world):
        router = ShardRouter(world, 4)
        routed = router.route_positions(self._batch())
        owner = {}
        for shard_id, sub in enumerate(routed):
            for _, position in sub:
                assert owner.setdefault(position.mmsi, shard_id) == shard_id


class TestEventRouting:
    def _event(self, lon, lat=38.0):
        return MovementEvent(
            MovementEventType.SLOW_MOTION, 200_000_001, lon, lat, 100
        )

    def test_every_event_reaches_some_band(self, world):
        router = ShardRouter(world, 4)
        step = (world.bbox.max_lon - world.bbox.min_lon) / 50
        events = [
            self._event(world.bbox.min_lon + i * step) for i in range(50)
        ]
        routed = router.route_events(events)
        seen = set()
        for sub in routed:
            seen.update(id(e) for e in sub)
        assert len(seen) == len(events)

    def test_band_envelopes_cover_band_areas(self, world):
        # Every area centroid must route to (at least) the band that owns
        # the area under partition_world — the exactness precondition.
        shards = 3
        router = ShardRouter(world, shards)
        bands = partition_world(world, shards)
        for band_id, band in enumerate(bands):
            for area in band.areas:
                lon = area.polygon.centroid[0]
                assert band_id in router.bands_for_longitude(lon)

    def test_margin_widens_envelopes(self, world):
        # Widening may coalesce intervals, so compare by containment: every
        # narrow interval must lie inside some wide interval.
        narrow = ShardRouter(world, 2, close_margin_meters=0.0)
        wide = ShardRouter(world, 2, close_margin_meters=50_000.0)
        for band_id in range(2):
            for nlo, nhi in narrow.envelopes[band_id]:
                assert any(
                    wlo <= nlo and whi >= nhi
                    for wlo, whi in wide.envelopes[band_id]
                )

    def test_out_of_envelope_falls_back_to_raw_band(self, world):
        router = ShardRouter(world, 2)
        # Far outside every area envelope: still routed (to its raw
        # longitude band) so tracker-side events are never dropped.
        bands = router.bands_for_longitude(world.bbox.min_lon - 5.0)
        assert len(bands) == 1

    def test_single_shard_routes_everything_to_band_zero(self, world):
        router = ShardRouter(world, 1)
        events = [self._event(23.0), self._event(26.0)]
        routed = router.route_events(events)
        assert routed == [events]
