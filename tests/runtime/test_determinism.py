"""The runtime's hard invariant: shard count never changes the output.

For every shard count the parallel system must emit byte-identical alert
sets and critical-point streams to the single-process pipeline on the same
seeded fleet — per slide, at finalize, and in the archived trajectories.
"""

import pytest

from repro.ais.stream import StreamReplayer, TimedArrival
from repro.pipeline import SurveillanceSystem, SystemConfig
from repro.runtime import ParallelSurveillanceSystem
from repro.tracking import WindowSpec


def _config():
    return SystemConfig(window=WindowSpec.of_hours(2, 0.5))


def _replay(system, small_fleet):
    """Drive a system over the fleet stream; normalized output transcript."""
    arrivals = [TimedArrival(p.timestamp, p) for p in small_fleet["stream"]]
    slides = []
    for query_time, batch in StreamReplayer(arrivals, 1800).batches():
        report = system.process_slide(batch, query_time)
        slides.append(
            (
                report.query_time,
                report.raw_positions,
                report.movement_events,
                report.fresh_critical_points,
                report.expired_critical_points,
                report.recognized_complex_events,
                [repr(a) for a in report.alerts],
            )
        )
    final = system.finalize()
    synopsis = [repr(p) for p in system.current_synopsis()]
    archived = []
    for trip in system.database.all_trips():
        archived.extend(
            repr(p) for p in system.database.trip_points(trip["trip_id"])
        )
    return {
        "slides": slides,
        "finalize": (
            final.movement_events,
            final.fresh_critical_points,
            final.expired_critical_points,
            final.recognized_complex_events,
            [repr(a) for a in final.alerts],
        ),
        "synopsis": synopsis,
        "alerts": [repr(a) for a in system.alerts()],
        "archived": archived,
    }


@pytest.fixture(scope="module")
def single_process_transcript(world, small_fleet):
    system = SurveillanceSystem(world, small_fleet["specs"], _config())
    transcript = _replay(system, small_fleet)
    # The fixture fleet must actually exercise the pipeline, or the
    # equality below is vacuous.
    assert sum(s[2] for s in transcript["slides"]) > 0, "no movement events"
    assert sum(s[3] for s in transcript["slides"]) > 0, "no critical points"
    assert any(s[6] for s in transcript["slides"]), "no alerts raised"
    return transcript


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_sharded_output_identical_to_single_process(
    world, small_fleet, shards, single_process_transcript
):
    with ParallelSurveillanceSystem(
        world, small_fleet["specs"], _config(), shards=shards
    ) as system:
        transcript = _replay(system, small_fleet)
    assert transcript == single_process_transcript


def test_report_surface_matches_single_process(world, small_fleet):
    """Drop-in contract: the aggregate compressor statistics and phase
    timings the reporting layer reads exist and add up."""
    with ParallelSurveillanceSystem(
        world, small_fleet["specs"], _config(), shards=2
    ) as system:
        arrivals = [
            TimedArrival(p.timestamp, p) for p in small_fleet["stream"]
        ]
        raw_total = 0
        for query_time, batch in StreamReplayer(arrivals, 1800).batches():
            system.process_slide(batch, query_time)
            raw_total += len(batch)
        system.finalize()
        assert system.compressor.statistics.raw_positions == raw_total
        assert system.compressor.statistics.critical_points > 0
        assert system.timings.slides > 0
        timing = system.last_partition_timing
        assert timing is not None
        assert len(timing.per_partition_seconds) == 2
        assert timing.measured_parallel_seconds is not None
        assert timing.measured_parallel_seconds > 0.0
