"""Checkpoint durability and the worker snapshot/restore contract."""

from repro.ais.stream import StreamReplayer, TimedArrival
from repro.pipeline.config import SystemConfig
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.worker import ShardWorker
from repro.tracking import WindowSpec


class TestCheckpointStore:
    def test_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(0, cursor=42, state={"value": [1, 2, 3]})
        snapshot = store.load(0)
        assert snapshot is not None
        assert snapshot.shard_id == 0
        assert snapshot.cursor == 42
        assert snapshot.state == {"value": [1, 2, 3]}

    def test_missing_is_none(self, tmp_path):
        assert CheckpointStore(tmp_path).load(3) is None

    def test_corrupt_file_is_none(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.path_for(0).write_bytes(b"\x80\x05 definitely not a pickle")
        assert store.load(0) is None

    def test_truncated_file_is_none(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(0, cursor=7, state={"x": list(range(1000))})
        payload = store.path_for(0).read_bytes()
        store.path_for(0).write_bytes(payload[: len(payload) // 2])
        assert store.load(0) is None

    def test_wrong_shard_id_is_none(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(1, cursor=7, state={})
        store.path_for(1).rename(store.path_for(2))
        assert store.load(2) is None

    def test_save_overwrites_atomically(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(0, cursor=1, state={"generation": 1})
        store.save(0, cursor=2, state={"generation": 2})
        assert store.load(0).state == {"generation": 2}
        # No temp-file litter after successful saves.
        assert list(tmp_path.glob("*.tmp")) == []

    def test_clear(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(0, 1, {})
        store.save(1, 1, {})
        store.clear(0)
        assert store.load(0) is None and store.load(1) is not None
        store.clear()
        assert store.load(1) is None


class TestWorkerSnapshotRestore:
    def _config(self):
        return SystemConfig(window=WindowSpec.of_minutes(120, 30))

    def _routed_slides(self, world, small_fleet):
        arrivals = [
            TimedArrival(p.timestamp, p) for p in small_fleet["stream"]
        ]
        slides = []
        for query_time, batch in StreamReplayer(arrivals, 1800).batches():
            slides.append(
                (query_time, [(i, p) for i, p in enumerate(batch)])
            )
        return slides

    def test_restored_worker_continues_identically(
        self, world, small_fleet, tmp_path
    ):
        """Snapshot after slide k, restore into a fresh worker, and the
        remaining slides must produce byte-identical outputs."""
        slides = self._routed_slides(world, small_fleet)
        split = len(slides) // 2

        def outputs(worker, subset):
            out = []
            for query_time, indexed in subset:
                reply = worker.track(query_time, indexed)
                out.append(
                    (
                        [repr(e) for _, e in reply["events"]],
                        [repr(p) for p in reply["fresh"]],
                        [repr(p) for p in reply["expired"]],
                    )
                )
            return out

        baseline = ShardWorker(0, 1, world, small_fleet["specs"], self._config())
        outputs(baseline, slides[:split])
        expected = outputs(baseline, slides[split:])

        crashed = ShardWorker(0, 1, world, small_fleet["specs"], self._config())
        outputs(crashed, slides[:split])
        store = CheckpointStore(tmp_path)
        store.save(0, cursor=split - 1, state=crashed.snapshot())
        del crashed

        revived = ShardWorker(0, 1, world, small_fleet["specs"], self._config())
        snapshot = store.load(0)
        revived.restore(snapshot.state, snapshot.cursor)
        assert revived.cursor == split - 1
        assert outputs(revived, slides[split:]) == expected


class TestStreamResume:
    def test_start_after_skips_replayed_slides(self, small_fleet):
        arrivals = [
            TimedArrival(p.timestamp, p) for p in small_fleet["stream"]
        ]
        replayer = StreamReplayer(arrivals, 1800)
        full = list(replayer.batches())
        assert len(full) > 2
        cursor = full[2][0]
        resumed = list(replayer.batches(start_after=cursor))
        assert resumed == full[3:]

    def test_start_after_before_stream_is_noop(self, small_fleet):
        arrivals = [
            TimedArrival(p.timestamp, p) for p in small_fleet["stream"]
        ]
        replayer = StreamReplayer(arrivals, 1800)
        assert list(replayer.batches(start_after=-1)) == list(
            replayer.batches()
        )
