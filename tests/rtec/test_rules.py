"""Tests for the rule language constructs."""

import pytest

from repro.rtec.rules import (
    End,
    EventPattern,
    Guard,
    HappensAt,
    HoldsAt,
    Rule,
    Start,
    StaticJoin,
    fact_table,
    happens_head,
    initiated,
    terminated,
)
from repro.rtec.terms import Var


class TestRuleConstruction:
    def test_initiated_builder(self):
        rule = initiated(
            "f", (Var("X"),), True, [HappensAt(EventPattern("e", (Var("X"),)))]
        )
        assert rule.head.fluent == "f"
        assert rule.head.value is True

    def test_terminated_builder(self):
        rule = terminated(
            "f", (Var("X"),), True, [HappensAt(EventPattern("e", (Var("X"),)))]
        )
        assert rule.head.fluent == "f"

    def test_happens_head_builder(self):
        rule = happens_head(
            "ce", (Var("X"),), [HappensAt(EventPattern("e", (Var("X"),)))]
        )
        assert rule.head.event == "ce"

    def test_empty_body_rejected(self):
        with pytest.raises(ValueError, match="at least one body literal"):
            Rule(
                head=initiated(
                    "f", (), True, [HappensAt(EventPattern("e"))]
                ).head,
                body=(),
            )

    def test_first_literal_must_be_trigger(self):
        with pytest.raises(ValueError, match="HappensAt trigger"):
            initiated("f", (), True, [HoldsAt("g", (), True)])


class TestReferencedSymbols:
    def test_referenced_events(self):
        rule = happens_head(
            "ce",
            (Var("X"),),
            [
                HappensAt(EventPattern("gap", (Var("X"),))),
                HoldsAt("coord", (Var("X"),), Var("C")),
            ],
        )
        assert rule.referenced_events() == {"gap"}
        assert rule.referenced_fluents() == {"coord"}

    def test_start_end_reference_fluents(self):
        rule = initiated(
            "f", (Var("X"),), True,
            [HappensAt(Start("stopped", (Var("X"),), True))],
        )
        assert rule.referenced_fluents() == {"stopped"}
        rule = initiated(
            "f", (Var("X"),), True,
            [HappensAt(End("stopped", (Var("X"),), True))],
        )
        assert rule.referenced_fluents() == {"stopped"}

    def test_head_variables(self):
        rule = initiated(
            "f", (Var("A"), Var("B")), Var("V"),
            [HappensAt(EventPattern("e", (Var("A"), Var("B"), Var("V"))))],
        )
        assert rule.head_variables() == {"A", "B", "V"}


class TestStaticJoin:
    def test_default_name_from_callable(self):
        def close(lon, lat):
            return []

        literal = StaticJoin(close, inputs=("Lon", "Lat"), outputs=("Area",))
        assert literal.name == "close"

    def test_explicit_name(self):
        literal = StaticJoin(lambda x: True, inputs=("X",), name="custom")
        assert literal.name == "custom"


class TestFactTable:
    def test_full_row_lookup(self):
        fishing = fact_table("fishing", [("v1",), ("v2",)])
        assert fishing("v1") == [()]
        assert fishing("v9") == []

    def test_suffix_enumeration(self):
        routes = fact_table("route", [("a", "b"), ("a", "c"), ("b", "c")])
        assert routes("a") == [("b",), ("c",)]
        assert routes() == [("a", "b"), ("a", "c"), ("b", "c")]

    def test_named(self):
        table = fact_table("myfacts", [])
        assert table.__name__ == "myfacts"


class TestGuard:
    def test_guard_holds_callable_and_vars(self):
        guard = Guard(lambda n: n > 3, ("N",))
        assert guard.test(5)
        assert not guard.test(2)
        assert guard.variables == ("N",)
