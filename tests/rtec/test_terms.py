"""Tests for logical variables and unification."""

import pytest
from hypothesis import given, strategies as st

from repro.rtec.terms import Var, bind, is_ground, pattern_variables, unify


class TestUnify:
    def test_constant_matches_itself(self):
        assert unify("a", "a", {}) == {}

    def test_constant_mismatch(self):
        assert unify("a", "b", {}) is None

    def test_fresh_variable_binds(self):
        assert unify(Var("X"), 42, {}) == {"X": 42}

    def test_bound_variable_must_agree(self):
        assert unify(Var("X"), 42, {"X": 42}) == {"X": 42}
        assert unify(Var("X"), 43, {"X": 42}) is None

    def test_tuple_elementwise(self):
        bindings = unify((Var("A"), Var("B")), (1, 2), {})
        assert bindings == {"A": 1, "B": 2}

    def test_tuple_arity_mismatch(self):
        assert unify((Var("A"),), (1, 2), {}) is None

    def test_tuple_vs_scalar(self):
        assert unify((Var("A"),), 5, {}) is None

    def test_nested_tuples(self):
        bindings = unify((Var("V"), (Var("Lon"), Var("Lat"))),
                         ("v1", (23.5, 37.9)), {})
        assert bindings == {"V": "v1", "Lon": 23.5, "Lat": 37.9}

    def test_repeated_variable_must_be_consistent(self):
        assert unify((Var("X"), Var("X")), (1, 1), {}) == {"X": 1}
        assert unify((Var("X"), Var("X")), (1, 2), {}) is None

    def test_input_bindings_not_mutated(self):
        original = {"Y": 9}
        result = unify(Var("X"), 1, original)
        assert result == {"Y": 9, "X": 1}
        assert original == {"Y": 9}

    def test_variable_binds_whole_tuple(self):
        assert unify(Var("Coord"), (23.5, 37.9), {}) == {"Coord": (23.5, 37.9)}

    @given(value=st.one_of(st.integers(), st.text(max_size=5), st.booleans()))
    def test_fresh_variable_binds_any_value(self, value):
        assert unify(Var("X"), value, {}) == {"X": value}


class TestBind:
    def test_substitutes_variables(self):
        assert bind((Var("A"), "x", Var("B")), {"A": 1, "B": 2}) == (1, "x", 2)

    def test_unbound_variable_raises(self):
        with pytest.raises(KeyError):
            bind(Var("Missing"), {})

    def test_constants_pass_through(self):
        assert bind("const", {}) == "const"
        assert bind(42, {"X": 1}) == 42


class TestInspection:
    def test_is_ground(self):
        assert is_ground(("a", 1, (2, 3)))
        assert not is_ground((Var("X"),))
        assert not is_ground(("a", (Var("Y"), 1)))

    def test_pattern_variables(self):
        pattern = (Var("A"), ("x", Var("B")), Var("A"))
        assert pattern_variables(pattern) == {"A", "B"}
        assert pattern_variables("const") == set()

    def test_var_repr(self):
        assert repr(Var("Vessel")) == "?Vessel"
