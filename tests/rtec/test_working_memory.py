"""Tests for the windowed working memory."""

from repro.rtec.working_memory import WorkingMemory


class TestEvents:
    def test_events_in_window(self):
        memory = WorkingMemory()
        memory.assert_event("gap", ("v1",), 50)
        memory.assert_event("gap", ("v1",), 150)
        visible = memory.events_in_window("gap", 100, 200)
        assert [o.time for o in visible] == [150]

    def test_window_is_left_open_right_closed(self):
        memory = WorkingMemory()
        memory.assert_event("gap", ("v1",), 100)
        memory.assert_event("gap", ("v1",), 200)
        visible = memory.events_in_window("gap", 100, 200)
        # t=100 is excluded (<= Q - omega), t=200 included.
        assert [o.time for o in visible] == [200]

    def test_unarrived_events_invisible(self):
        memory = WorkingMemory()
        memory.assert_event("gap", ("v1",), 150, arrival=250)
        assert memory.events_in_window("gap", 100, 200) == []
        visible = memory.events_in_window("gap", 100, 300)
        assert [o.time for o in visible] == [150]

    def test_occurrences_sorted_by_time(self):
        memory = WorkingMemory()
        memory.assert_event("turn", ("v1",), 30)
        memory.assert_event("turn", ("v2",), 10)
        memory.assert_event("turn", ("v1",), 20)
        visible = memory.events_in_window("turn", 0, 100)
        assert [o.time for o in visible] == [10, 20, 30]

    def test_unknown_functor_empty(self):
        assert WorkingMemory().events_in_window("nope", 0, 10) == []

    def test_event_functors_listing(self):
        memory = WorkingMemory()
        memory.assert_event("gap", ("v1",), 1)
        memory.assert_event("turn", ("v1",), 2)
        assert sorted(memory.event_functors()) == ["gap", "turn"]


class TestValuedFluents:
    def test_value_persists_until_next_assignment(self):
        memory = WorkingMemory()
        memory.assert_value("coord", ("v1",), (1.0, 1.0), 10)
        memory.assert_value("coord", ("v1",), (2.0, 2.0), 50)
        assert memory.value_at("coord", ("v1",), 30, 100) == (1.0, 1.0)
        assert memory.value_at("coord", ("v1",), 50, 100) == (2.0, 2.0)
        assert memory.value_at("coord", ("v1",), 99, 100) == (2.0, 2.0)

    def test_no_value_before_first_assignment(self):
        memory = WorkingMemory()
        memory.assert_value("coord", ("v1",), (1.0, 1.0), 10)
        assert memory.value_at("coord", ("v1",), 5, 100) is None

    def test_unknown_instance(self):
        assert WorkingMemory().value_at("coord", ("v9",), 10, 100) is None

    def test_unarrived_assignment_skipped(self):
        memory = WorkingMemory()
        memory.assert_value("coord", ("v1",), (1.0, 1.0), 10)
        memory.assert_value("coord", ("v1",), (2.0, 2.0), 50, arrival=500)
        # At query time 100 the second assignment has not arrived.
        assert memory.value_at("coord", ("v1",), 60, 100) == (1.0, 1.0)
        assert memory.value_at("coord", ("v1",), 60, 500) == (2.0, 2.0)

    def test_out_of_order_assertions_sorted(self):
        memory = WorkingMemory()
        memory.assert_value("coord", ("v1",), (2.0, 2.0), 50)
        memory.assert_value("coord", ("v1",), (1.0, 1.0), 10)
        assert memory.value_at("coord", ("v1",), 30, 100) == (1.0, 1.0)

    def test_valued_instances(self):
        memory = WorkingMemory()
        memory.assert_value("coord", ("v1",), (1.0, 1.0), 10)
        memory.assert_value("coord", ("v2",), (2.0, 2.0), 10)
        memory.assert_value("draft", ("v1",), 5.0, 10)
        assert sorted(memory.valued_instances("coord")) == [("v1",), ("v2",)]


class TestForgetting:
    def test_old_events_dropped(self):
        memory = WorkingMemory()
        memory.assert_event("gap", ("v1",), 50)
        memory.assert_event("gap", ("v1",), 150)
        memory.forget_before(100)
        assert memory.event_count() == 1
        # The horizon itself is dropped too (<= horizon).
        memory.assert_event("gap", ("v1",), 200)
        memory.forget_before(200)
        assert memory.event_count() == 0

    def test_latest_pre_horizon_value_retained(self):
        memory = WorkingMemory()
        memory.assert_value("coord", ("v1",), (1.0, 1.0), 10)
        memory.assert_value("coord", ("v1",), (2.0, 2.0), 50)
        memory.forget_before(100)
        # The value at the window edge persists: assignments before the
        # horizon collapse to the most recent one.
        assert memory.value_at("coord", ("v1",), 101, 200) == (2.0, 2.0)

    def test_forget_keeps_recent(self):
        memory = WorkingMemory()
        for t in range(0, 100, 10):
            memory.assert_event("turn", ("v1",), t)
        kept = memory.forget_before(50)
        assert kept == 4  # 60, 70, 80, 90
