"""Out-of-order / delayed event handling: the Figure 5 semantics.

"When the range omega is longer than the slide step beta, it is possible
that an ME occurs in the interval (Qi - omega, Qi-1] but arrives at RTEC
only after Qi-1; its effects are taken into account at query time Qi."
"""

from repro.rtec.engine import RTEC
from repro.rtec.intervals import OPEN
from repro.rtec.rules import EventPattern, HappensAt, initiated, terminated
from repro.rtec.terms import Var

V = Var("Vessel")

RULES = [
    initiated("stopped", (V,), True, [HappensAt(EventPattern("stop_start", (V,)))]),
    terminated("stopped", (V,), True, [HappensAt(EventPattern("stop_end", (V,)))]),
]


def make_engine(window=200):
    engine = RTEC(window_seconds=window)
    engine.declare_rules(RULES)
    return engine


class TestDelayedEvents:
    def test_delayed_event_recovered_at_next_query(self):
        engine = make_engine(window=200)
        # The event occurs at t=90 but arrives after Q1=100.
        engine.working_memory.assert_event("stop_start", ("v1",), 90, arrival=150)
        result_q1 = engine.step(100)
        assert result_q1.intervals("stopped", ("v1",)) == []
        # At Q2=200 the event has arrived and t=90 is still in (0, 200].
        result_q2 = engine.step(200)
        assert result_q2.intervals("stopped", ("v1",)) == [(90, OPEN)]

    def test_event_too_old_at_arrival_is_lost(self):
        engine = make_engine(window=100)
        # Occurs at t=50, arrives at t=250; at Q=300 the window is (200, 300].
        engine.working_memory.assert_event("stop_start", ("v1",), 50, arrival=250)
        result = engine.step(300)
        assert result.intervals("stopped", ("v1",)) == []

    def test_delayed_termination_closes_interval_retroactively(self):
        engine = make_engine(window=400)
        engine.working_memory.assert_event("stop_start", ("v1",), 100)
        result = engine.step(200)
        assert result.intervals("stopped", ("v1",)) == [(100, OPEN)]
        # The stop actually ended at t=150, but the ME arrives late.
        engine.working_memory.assert_event("stop_end", ("v1",), 150, arrival=250)
        result = engine.step(300)
        assert result.intervals("stopped", ("v1",)) == [(100, 150)]

    def test_interleaved_delays_multiple_vessels(self):
        engine = make_engine(window=400)
        engine.working_memory.assert_event("stop_start", ("v1",), 100, arrival=180)
        engine.working_memory.assert_event("stop_start", ("v2",), 120)
        engine.working_memory.assert_event("stop_end", ("v2",), 160, arrival=320)
        result_q1 = engine.step(150)
        # v1's delayed start invisible; v2 stopped and (apparently) ongoing.
        assert result_q1.intervals("stopped", ("v1",)) == []
        assert result_q1.intervals("stopped", ("v2",)) == [(120, OPEN)]
        result_q2 = engine.step(350)
        assert result_q2.intervals("stopped", ("v1",)) == [(100, OPEN)]
        assert result_q2.intervals("stopped", ("v2",)) == [(120, 160)]

    def test_same_result_as_in_order_delivery(self):
        # Delayed delivery converges to the in-order recognition result
        # once everything has arrived within the window.
        in_order = make_engine(window=1000)
        in_order.working_memory.assert_event("stop_start", ("v1",), 100)
        in_order.working_memory.assert_event("stop_end", ("v1",), 300)
        in_order.working_memory.assert_event("stop_start", ("v1",), 500)
        expected = in_order.step(900).intervals("stopped", ("v1",))

        delayed = make_engine(window=1000)
        delayed.working_memory.assert_event("stop_end", ("v1",), 300, arrival=600)
        delayed.working_memory.assert_event("stop_start", ("v1",), 500, arrival=550)
        delayed.working_memory.assert_event("stop_start", ("v1",), 100, arrival=520)
        delayed.step(510)  # intermediate query with partial knowledge
        assert delayed.step(900).intervals("stopped", ("v1",)) == expected
