"""Engine tests for valued-fluent patterns: partial binding and tuples."""

from repro.rtec.engine import RTEC
from repro.rtec.rules import EventPattern, Guard, HappensAt, HoldsAt, happens_head
from repro.rtec.terms import Var

V = Var("Vessel")


def make_engine(rules):
    engine = RTEC(window_seconds=1000)
    engine.declare_rules(rules)
    return engine


class TestValuedPatterns:
    def test_partially_bound_tuple_value(self):
        # coord value (Lon, Lat) with Lon pre-bound via the event args:
        # only assignments agreeing on Lon unify.
        rules = [
            happens_head(
                "match", (V,),
                [
                    HappensAt(EventPattern("probe", (V, Var("Lon")))),
                    HoldsAt("coord", (V,), (Var("Lon"), Var("Lat"))),
                ],
            )
        ]
        engine = make_engine(rules)
        engine.working_memory.assert_value("coord", ("v1",), (10.0, 20.0), 5)
        engine.working_memory.assert_event("probe", ("v1", 10.0), 50)
        engine.working_memory.assert_event("probe", ("v1", 99.0), 60)
        result = engine.step(100)
        assert result.occurrences("match") == [(("v1",), 50)]

    def test_unbound_args_enumerate_instances(self):
        # holdsAt over all vessels with a known draft above a threshold.
        rules = [
            happens_head(
                "deep", (Var("Other"),),
                [
                    HappensAt(EventPattern("tick", ())),
                    HoldsAt("draft", (Var("Other"),), Var("D")),
                    Guard(lambda draft: draft > 9.0, ("D",)),
                ],
            )
        ]
        engine = make_engine(rules)
        engine.working_memory.assert_value("draft", ("v1",), 12.0, 0)
        engine.working_memory.assert_value("draft", ("v2",), 4.0, 0)
        engine.working_memory.assert_event("tick", (), 50)
        result = engine.step(100)
        assert result.occurrences("deep") == [(("v1",), 50)]

    def test_ground_value_check(self):
        # holdsAt with a fully ground expected value acts as a filter.
        rules = [
            happens_head(
                "redalert", (V,),
                [
                    HappensAt(EventPattern("ping", (V,))),
                    HoldsAt("status", (V,), "red"),
                ],
            )
        ]
        engine = make_engine(rules)
        engine.working_memory.assert_value("status", ("v1",), "red", 0)
        engine.working_memory.assert_value("status", ("v2",), "green", 0)
        engine.working_memory.assert_event("ping", ("v1",), 10)
        engine.working_memory.assert_event("ping", ("v2",), 20)
        result = engine.step(100)
        assert result.occurrences("redalert") == [(("v1",), 10)]

    def test_value_changes_between_events(self):
        rules = [
            happens_head(
                "snapshot", (V, Var("S")),
                [
                    HappensAt(EventPattern("ping", (V,))),
                    HoldsAt("status", (V,), Var("S")),
                ],
            )
        ]
        engine = make_engine(rules)
        engine.working_memory.assert_value("status", ("v1",), "a", 0)
        engine.working_memory.assert_value("status", ("v1",), "b", 50)
        engine.working_memory.assert_event("ping", ("v1",), 25)
        engine.working_memory.assert_event("ping", ("v1",), 75)
        result = engine.step(100)
        assert result.occurrences("snapshot") == [
            (("v1", "a"), 25),
            (("v1", "b"), 75),
        ]
