"""Inertia across window slides: open intervals must outlive the window.

A vessel stopped for six hours stays ``stopped`` even after its
``stop_start`` ME has been forgotten by the working memory — the law of
inertia, not the window, governs fluent persistence.
"""

from repro.rtec.engine import RTEC
from repro.rtec.intervals import OPEN
from repro.rtec.rules import (
    EventPattern,
    HappensAt,
    Start,
    happens_head,
    initiated,
    terminated,
)
from repro.rtec.terms import Var

V = Var("Vessel")

RULES = [
    initiated("stopped", (V,), True, [HappensAt(EventPattern("stop_start", (V,)))]),
    terminated("stopped", (V,), True, [HappensAt(EventPattern("stop_end", (V,)))]),
]


def make_engine(window=100):
    engine = RTEC(window_seconds=window)
    engine.declare_rules(RULES)
    return engine


class TestPersistence:
    def test_open_interval_survives_window_slide(self):
        engine = make_engine(window=100)
        engine.working_memory.assert_event("stop_start", ("v1",), 50)
        assert engine.step(100).intervals("stopped", ("v1",)) == [(50, OPEN)]
        # At Q=300 the initiation event left the window long ago.
        assert engine.step(300).intervals("stopped", ("v1",)) == [(50, OPEN)]

    def test_persisted_interval_closed_by_later_termination(self):
        engine = make_engine(window=100)
        engine.working_memory.assert_event("stop_start", ("v1",), 50)
        engine.step(100)
        engine.working_memory.assert_event("stop_end", ("v1",), 250)
        assert engine.step(300).intervals("stopped", ("v1",)) == [(50, 250)]
        # Once closed, the interval is not resurrected at later steps.
        assert engine.step(600).intervals("stopped", ("v1",)) == []

    def test_closed_intervals_do_not_persist(self):
        engine = make_engine(window=100)
        engine.working_memory.assert_event("stop_start", ("v1",), 20)
        engine.working_memory.assert_event("stop_end", ("v1",), 80)
        assert engine.step(100).intervals("stopped", ("v1",)) == [(20, 80)]
        assert engine.step(300).intervals("stopped", ("v1",)) == []

    def test_reinitiation_of_persisted_interval_absorbed(self):
        engine = make_engine(window=100)
        engine.working_memory.assert_event("stop_start", ("v1",), 50)
        engine.step(100)
        # A second stop_start while still stopped: same maximal interval.
        engine.working_memory.assert_event("stop_start", ("v1",), 150)
        assert engine.step(200).intervals("stopped", ("v1",)) == [(50, OPEN)]

    def test_start_event_not_refired_for_persisted_interval(self):
        rules = RULES + [
            happens_head(
                "alarm", (V,), [HappensAt(Start("stopped", (V,), True))]
            )
        ]
        engine = RTEC(window_seconds=100)
        engine.declare_rules(rules)
        engine.working_memory.assert_event("stop_start", ("v1",), 50)
        assert engine.step(100).occurrences("alarm") == [(("v1",), 50)]
        # The interval persists, but its start lies outside the new window:
        # the alarm must not fire again.
        assert engine.step(300).occurrences("alarm") == []

    def test_multiple_vessels_persist_independently(self):
        engine = make_engine(window=100)
        engine.working_memory.assert_event("stop_start", ("v1",), 50)
        engine.working_memory.assert_event("stop_start", ("v2",), 60)
        engine.step(100)
        engine.working_memory.assert_event("stop_end", ("v1",), 150)
        result = engine.step(200)
        assert result.intervals("stopped", ("v1",)) == [(50, 150)]
        assert result.intervals("stopped", ("v2",)) == [(60, OPEN)]
