"""Tests for the RTEC engine core: derivation, joins, stratification."""

from typing import ClassVar

import pytest

from repro.rtec.engine import RTEC, ComputedFluent
from repro.rtec.intervals import OPEN
from repro.rtec.rules import (
    End,
    EventPattern,
    Guard,
    HappensAt,
    HoldsAt,
    Start,
    StaticJoin,
    happens_head,
    initiated,
    terminated,
)
from repro.rtec.terms import Var

V = Var("Vessel")

STOPPED_RULES = [
    initiated("stopped", (V,), True, [HappensAt(EventPattern("stop_start", (V,)))]),
    terminated("stopped", (V,), True, [HappensAt(EventPattern("stop_end", (V,)))]),
]


def make_engine(rules, window=1000):
    engine = RTEC(window_seconds=window)
    engine.declare_rules(rules)
    return engine


class TestBasicDerivation:
    def test_initiation_opens_interval(self):
        engine = make_engine(STOPPED_RULES)
        engine.working_memory.assert_event("stop_start", ("v1",), 100)
        result = engine.step(500)
        assert result.intervals("stopped", ("v1",)) == [(100, OPEN)]

    def test_termination_closes_interval(self):
        engine = make_engine(STOPPED_RULES)
        engine.working_memory.assert_event("stop_start", ("v1",), 100)
        engine.working_memory.assert_event("stop_end", ("v1",), 300)
        result = engine.step(500)
        assert result.intervals("stopped", ("v1",)) == [(100, 300)]

    def test_holds_at_semantics(self):
        engine = make_engine(STOPPED_RULES)
        engine.working_memory.assert_event("stop_start", ("v1",), 100)
        engine.working_memory.assert_event("stop_end", ("v1",), 300)
        result = engine.step(500)
        assert not result.holds_at("stopped", ("v1",), 100)  # open left
        assert result.holds_at("stopped", ("v1",), 101)
        assert result.holds_at("stopped", ("v1",), 300)  # closed right
        assert not result.holds_at("stopped", ("v1",), 301)

    def test_instances_are_independent(self):
        engine = make_engine(STOPPED_RULES)
        engine.working_memory.assert_event("stop_start", ("v1",), 100)
        engine.working_memory.assert_event("stop_start", ("v2",), 200)
        engine.working_memory.assert_event("stop_end", ("v1",), 300)
        result = engine.step(500)
        assert result.intervals("stopped", ("v1",)) == [(100, 300)]
        assert result.intervals("stopped", ("v2",)) == [(200, OPEN)]

    def test_multiple_intervals_per_instance(self):
        engine = make_engine(STOPPED_RULES)
        for t_start, t_end in [(100, 200), (300, 400)]:
            engine.working_memory.assert_event("stop_start", ("v1",), t_start)
            engine.working_memory.assert_event("stop_end", ("v1",), t_end)
        result = engine.step(500)
        assert result.intervals("stopped", ("v1",)) == [(100, 200), (300, 400)]

    def test_events_outside_window_ignored(self):
        engine = make_engine(STOPPED_RULES, window=100)
        engine.working_memory.assert_event("stop_start", ("v1",), 100)
        result = engine.step(500)  # window (400, 500]
        assert result.intervals("stopped", ("v1",)) == []


class TestMultiValuedFluents:
    RULES: ClassVar[list] = [
        initiated(
            "phase", (V,), "sailing",
            [HappensAt(EventPattern("depart", (V,)))],
        ),
        initiated(
            "phase", (V,), "docked",
            [HappensAt(EventPattern("dock", (V,)))],
        ),
    ]

    def test_new_value_breaks_old(self):
        # Rule (2): initiating phase=docked terminates phase=sailing.
        engine = make_engine(self.RULES)
        engine.working_memory.assert_event("depart", ("v1",), 100)
        engine.working_memory.assert_event("dock", ("v1",), 300)
        result = engine.step(500)
        assert result.intervals("phase", ("v1",), "sailing") == [(100, 300)]
        assert result.intervals("phase", ("v1",), "docked") == [(300, OPEN)]

    def test_never_two_values_simultaneously(self):
        engine = make_engine(self.RULES)
        engine.working_memory.assert_event("depart", ("v1",), 100)
        engine.working_memory.assert_event("dock", ("v1",), 300)
        engine.working_memory.assert_event("depart", ("v1",), 350)
        result = engine.step(500)
        for probe in range(90, 500, 7):
            holding = [
                value
                for value in ("sailing", "docked")
                if result.holds_at("phase", ("v1",), probe, value)
            ]
            assert len(holding) <= 1


class TestJoinsAndGuards:
    def test_holds_at_join_with_valued_fluent(self):
        rules = [
            happens_head(
                "alarm", (V, Var("Lon"), Var("Lat")),
                [
                    HappensAt(EventPattern("gap", (V,))),
                    HoldsAt("coord", (V,), (Var("Lon"), Var("Lat"))),
                ],
            )
        ]
        engine = make_engine(rules)
        engine.working_memory.assert_value("coord", ("v1",), (10.0, 20.0), 50)
        engine.working_memory.assert_event("gap", ("v1",), 100)
        result = engine.step(500)
        assert result.occurrences("alarm") == [(("v1", 10.0, 20.0), 100)]

    def test_missing_coord_blocks_rule(self):
        rules = [
            happens_head(
                "alarm", (V,),
                [
                    HappensAt(EventPattern("gap", (V,))),
                    HoldsAt("coord", (V,), Var("C")),
                ],
            )
        ]
        engine = make_engine(rules)
        engine.working_memory.assert_event("gap", ("v1",), 100)
        result = engine.step(500)
        assert result.occurrences("alarm") == []

    def test_static_enumeration(self):
        def nearby(x):
            return [("zone_a",), ("zone_b",)] if x > 5 else []

        rules = [
            happens_head(
                "hit", (V, Var("Zone")),
                [
                    HappensAt(EventPattern("ping", (V, Var("X")))),
                    StaticJoin(nearby, inputs=("X",), outputs=("Zone",)),
                ],
            )
        ]
        engine = make_engine(rules)
        engine.working_memory.assert_event("ping", ("v1", 7), 100)
        engine.working_memory.assert_event("ping", ("v2", 3), 150)
        result = engine.step(500)
        assert result.occurrences("hit") == [
            (("v1", "zone_a"), 100),
            (("v1", "zone_b"), 100),
        ]

    def test_static_boolean_filter(self):
        rules = [
            happens_head(
                "evenhit", (V,),
                [
                    HappensAt(EventPattern("ping", (V, Var("X")))),
                    StaticJoin(lambda x: x % 2 == 0, inputs=("X",), name="even"),
                ],
            )
        ]
        engine = make_engine(rules)
        engine.working_memory.assert_event("ping", ("v1", 4), 100)
        engine.working_memory.assert_event("ping", ("v2", 5), 150)
        result = engine.step(500)
        assert result.occurrences("evenhit") == [(("v1",), 100)]

    def test_guard_filters_bindings(self):
        rules = [
            happens_head(
                "bigping", (V,),
                [
                    HappensAt(EventPattern("ping", (V, Var("X")))),
                    Guard(lambda x: x > 10, ("X",)),
                ],
            )
        ]
        engine = make_engine(rules)
        engine.working_memory.assert_event("ping", ("v1", 50), 100)
        engine.working_memory.assert_event("ping", ("v2", 5), 150)
        result = engine.step(500)
        assert result.occurrences("bigping") == [(("v1",), 100)]

    def test_unbound_static_input_raises(self):
        rules = [
            happens_head(
                "bad", (V,),
                [
                    HappensAt(EventPattern("ping", (V,))),
                    StaticJoin(lambda x: True, inputs=("Missing",), name="s"),
                ],
            )
        ]
        engine = make_engine(rules)
        engine.working_memory.assert_event("ping", ("v1",), 100)
        with pytest.raises(ValueError, match="unbound input"):
            engine.step(500)


class TestStartEndEvents:
    RULES = STOPPED_RULES + [
        happens_head(
            "stop_began", (V,),
            [HappensAt(Start("stopped", (V,), True))],
        ),
        happens_head(
            "stop_ceased", (V,),
            [HappensAt(End("stopped", (V,), True))],
        ),
    ]

    def test_start_fires_at_initiation_point(self):
        engine = make_engine(self.RULES)
        engine.working_memory.assert_event("stop_start", ("v1",), 100)
        result = engine.step(500)
        assert result.occurrences("stop_began") == [(("v1",), 100)]

    def test_end_fires_only_when_closed(self):
        engine = make_engine(self.RULES)
        engine.working_memory.assert_event("stop_start", ("v1",), 100)
        result = engine.step(500)
        assert result.occurrences("stop_ceased") == []
        engine.working_memory.assert_event("stop_end", ("v1",), 600)
        result = engine.step(900)
        assert result.occurrences("stop_ceased") == [(("v1",), 600)]


class TestStratification:
    def test_layered_fluents_evaluated_bottom_up(self):
        rules = STOPPED_RULES + [
            initiated(
                "alerted", (V,), True,
                [HappensAt(Start("stopped", (V,), True))],
            ),
        ]
        engine = make_engine(rules)
        engine.working_memory.assert_event("stop_start", ("v1",), 100)
        result = engine.step(500)
        assert result.intervals("alerted", ("v1",)) == [(100, OPEN)]

    def test_cycle_detected(self):
        rules = [
            initiated("a", (V,), True, [HappensAt(Start("b", (V,), True))]),
            initiated("b", (V,), True, [HappensAt(Start("a", (V,), True))]),
        ]
        engine = make_engine(rules)
        with pytest.raises(ValueError, match="cyclic"):
            engine.step(100)


class TestComputedFluents:
    def test_computed_fluent_visible_to_rules(self):
        class Doubler(ComputedFluent):
            functor = "doubled"
            depends_on_fluents = frozenset({"stopped"})

            def compute(self, view):
                out = {}
                for args, values in view.fluent_instances("stopped").items():
                    out[args] = {2: values.get(True, [])}
                return out

        rules = STOPPED_RULES + [
            happens_head(
                "twice", (V,),
                [
                    HappensAt(EventPattern("probe", (V,))),
                    HoldsAt("doubled", (V,), 2),
                ],
            )
        ]
        engine = make_engine(rules)
        engine.declare_computed(Doubler())
        engine.working_memory.assert_event("stop_start", ("v1",), 100)
        engine.working_memory.assert_event("probe", ("v1",), 200)
        result = engine.step(500)
        assert result.occurrences("twice") == [(("v1",), 200)]

    def test_unnamed_computed_rejected(self):
        engine = RTEC(window_seconds=100)
        with pytest.raises(ValueError, match="functor"):
            engine.declare_computed(ComputedFluent())


class TestOutputsAndValidation:
    def test_output_restriction(self):
        rules = STOPPED_RULES + [
            initiated(
                "alerted", (V,), True,
                [HappensAt(Start("stopped", (V,), True))],
            ),
        ]
        engine = make_engine(rules)
        engine.declare_outputs(fluents=["alerted"])
        engine.working_memory.assert_event("stop_start", ("v1",), 100)
        result = engine.step(500)
        assert "alerted" in result.fluents
        assert "stopped" not in result.fluents

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError, match="window range"):
            RTEC(window_seconds=0)

    def test_complex_event_count(self):
        engine = make_engine(STOPPED_RULES)
        engine.working_memory.assert_event("stop_start", ("v1",), 100)
        result = engine.step(500)
        assert result.complex_event_count() == 1

    def test_unbound_holdsat_time_raises(self):
        # A rule whose holdsAt references a different (unbound) time var.
        rules = [
            happens_head(
                "bad", (V,),
                [
                    HappensAt(EventPattern("ping", (V,))),
                    HoldsAt("coord", (V,), Var("C"), time_variable="T2"),
                ],
            )
        ]
        engine = make_engine(rules)
        engine.working_memory.assert_event("ping", ("v1",), 10)
        engine.working_memory.assert_value("coord", ("v1",), (0.0, 0.0), 5)
        with pytest.raises(ValueError, match="unbound time"):
            engine.step(100)
