"""Brute-force oracle for maximal-interval composition.

Targets :func:`intervals_from_points` directly (the engine-level oracle in
``test_engine_properties`` exercises it indirectly): for random initiation
and termination point sets, every timepoint's membership must match the
paper's definition — F=V holds at T iff some initiation Ts < T exists with
no break Tf (a termination strictly after Ts) in (Ts, T).
"""

from hypothesis import given, strategies as st

from repro.rtec.intervals import holds_at, intervals_from_points

points = st.lists(st.integers(min_value=0, max_value=60), max_size=12)


def oracle(inits, terms, probe):
    """Direct transcription of rules (1)-(2) for a single value."""
    for ts in inits:
        if ts < probe and not any(ts < tf < probe for tf in terms):
            return True
    return False


@given(inits=points, terms=points, probe=st.integers(min_value=0, max_value=61))
def test_membership_matches_oracle(inits, terms, probe):
    intervals = intervals_from_points(inits, terms)
    assert holds_at(intervals, probe) == oracle(inits, terms, probe), (
        inits,
        terms,
        probe,
        intervals,
    )


@given(inits=points, terms=points)
def test_every_timepoint_checked(inits, terms):
    intervals = intervals_from_points(inits, terms)
    for probe in range(0, 62):
        assert holds_at(intervals, probe) == oracle(inits, terms, probe)


@given(inits=points, terms=points)
def test_regression_simultaneous_init_and_term(inits, terms):
    # The fixed edge case: initiation coinciding with a termination point
    # continues the value (rule (1) requires Ts < Tf).
    intervals = intervals_from_points([1, 2], [2])
    assert holds_at(intervals, 3)
    assert holds_at(intervals, 2)
    # And the generated inputs keep the normal form regardless.
    generated = intervals_from_points(inits, terms)
    for (_ts1, tf1), (ts2, _) in zip(generated, generated[1:]):
        assert tf1 < ts2
