"""Tests for negation-as-failure literals."""

from typing import ClassVar

import pytest

from repro.rtec.engine import RTEC
from repro.rtec.intervals import OPEN
from repro.rtec.rules import (
    End,
    EventPattern,
    HappensAt,
    NotHappensAt,
    NotHoldsAt,
    Start,
    happens_head,
    initiated,
    terminated,
)
from repro.rtec.terms import Var

V = Var("Vessel")

STOPPED_RULES = [
    initiated("stopped", (V,), True, [HappensAt(EventPattern("stop_start", (V,)))]),
    terminated("stopped", (V,), True, [HappensAt(EventPattern("stop_end", (V,)))]),
]


def make_engine(rules, window=1000):
    engine = RTEC(window_seconds=window)
    engine.declare_rules(rules)
    return engine


class TestNotHappensAt:
    RULES: ClassVar[list] = [
        happens_head(
            "silent_ping", (V,),
            [
                HappensAt(EventPattern("ping", (V,))),
                NotHappensAt(EventPattern("ack", (V,))),
            ],
        )
    ]

    def test_succeeds_without_counter_event(self):
        engine = make_engine(self.RULES)
        engine.working_memory.assert_event("ping", ("v1",), 100)
        result = engine.step(500)
        assert result.occurrences("silent_ping") == [(("v1",), 100)]

    def test_blocked_by_simultaneous_counter_event(self):
        engine = make_engine(self.RULES)
        engine.working_memory.assert_event("ping", ("v1",), 100)
        engine.working_memory.assert_event("ack", ("v1",), 100)
        result = engine.step(500)
        assert result.occurrences("silent_ping") == []

    def test_counter_event_at_other_time_is_irrelevant(self):
        engine = make_engine(self.RULES)
        engine.working_memory.assert_event("ping", ("v1",), 100)
        engine.working_memory.assert_event("ack", ("v1",), 150)
        result = engine.step(500)
        assert result.occurrences("silent_ping") == [(("v1",), 100)]

    def test_counter_event_for_other_vessel_is_irrelevant(self):
        engine = make_engine(self.RULES)
        engine.working_memory.assert_event("ping", ("v1",), 100)
        engine.working_memory.assert_event("ack", ("v2",), 100)
        result = engine.step(500)
        assert result.occurrences("silent_ping") == [(("v1",), 100)]

    def test_unbound_time_rejected(self):
        rules = [
            happens_head(
                "bad", (V,),
                [
                    HappensAt(EventPattern("ping", (V,))),
                    NotHappensAt(EventPattern("ack", (V,)), time_variable="T2"),
                ],
            )
        ]
        engine = make_engine(rules)
        engine.working_memory.assert_event("ping", ("v1",), 100)
        with pytest.raises(ValueError, match="unbound time"):
            engine.step(500)

    def test_negated_start_event(self):
        rules = STOPPED_RULES + [
            happens_head(
                "lonely_gap", (V,),
                [
                    HappensAt(EventPattern("gap", (V,))),
                    NotHappensAt(Start("stopped", (V,), True)),
                ],
            )
        ]
        engine = make_engine(rules)
        engine.working_memory.assert_event("gap", ("v1",), 100)
        engine.working_memory.assert_event("gap", ("v2",), 200)
        engine.working_memory.assert_event("stop_start", ("v2",), 200)
        result = engine.step(500)
        assert result.occurrences("lonely_gap") == [(("v1",), 100)]


class TestNotHoldsAt:
    RULES = STOPPED_RULES + [
        happens_head(
            "moving_ping", (V,),
            [
                HappensAt(EventPattern("ping", (V,))),
                NotHoldsAt("stopped", (V,), True),
            ],
        )
    ]

    def test_succeeds_when_fluent_absent(self):
        engine = make_engine(self.RULES)
        engine.working_memory.assert_event("ping", ("v1",), 100)
        result = engine.step(500)
        assert result.occurrences("moving_ping") == [(("v1",), 100)]

    def test_blocked_while_fluent_holds(self):
        engine = make_engine(self.RULES)
        engine.working_memory.assert_event("stop_start", ("v1",), 50)
        engine.working_memory.assert_event("ping", ("v1",), 100)
        result = engine.step(500)
        assert result.occurrences("moving_ping") == []

    def test_succeeds_after_fluent_terminated(self):
        engine = make_engine(self.RULES)
        engine.working_memory.assert_event("stop_start", ("v1",), 50)
        engine.working_memory.assert_event("stop_end", ("v1",), 80)
        engine.working_memory.assert_event("ping", ("v1",), 100)
        result = engine.step(500)
        assert result.occurrences("moving_ping") == [(("v1",), 100)]

    def test_negation_in_fluent_definition(self):
        # unattended(V): initiated by an alarm while not stopped.
        rules = STOPPED_RULES + [
            initiated(
                "unattended", (V,), True,
                [
                    HappensAt(EventPattern("alarm", (V,))),
                    NotHoldsAt("stopped", (V,), True),
                ],
            )
        ]
        engine = make_engine(rules)
        engine.working_memory.assert_event("alarm", ("v1",), 100)
        engine.working_memory.assert_event("stop_start", ("v2",), 50)
        engine.working_memory.assert_event("alarm", ("v2",), 100)
        result = engine.step(500)
        assert result.intervals("unattended", ("v1",)) == [(100, OPEN)]
        assert result.intervals("unattended", ("v2",)) == []

    def test_stratification_covers_negated_fluents(self):
        # A negated dependency still forces evaluation order; a cycle
        # through negation is rejected like any other cycle.
        rules = [
            initiated("a", (V,), True,
                      [HappensAt(EventPattern("e", (V,))),
                       NotHoldsAt("b", (V,), True)]),
            initiated("b", (V,), True,
                      [HappensAt(EventPattern("e", (V,))),
                       NotHoldsAt("a", (V,), True)]),
        ]
        engine = make_engine(rules)
        engine.working_memory.assert_event("e", ("v1",), 10)
        with pytest.raises(ValueError, match="cyclic"):
            engine.step(100)


class TestNegatedEnd:
    def test_negated_end_event(self):
        rules = STOPPED_RULES + [
            happens_head(
                "still_stopped_probe", (V,),
                [
                    HappensAt(EventPattern("probe", (V,))),
                    NotHappensAt(End("stopped", (V,), True)),
                ],
            )
        ]
        engine = make_engine(rules)
        engine.working_memory.assert_event("stop_start", ("v1",), 50)
        engine.working_memory.assert_event("stop_end", ("v1",), 100)
        engine.working_memory.assert_event("probe", ("v1",), 100)
        engine.working_memory.assert_event("probe", ("v1",), 200)
        result = engine.step(500)
        # The probe coinciding with the stop's end is blocked.
        assert result.occurrences("still_stopped_probe") == [(("v1",), 200)]
