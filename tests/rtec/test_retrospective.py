"""Tests for retrospective recognition over asserted history."""

import pytest

from repro.rtec.engine import RTEC
from repro.rtec.rules import EventPattern, HappensAt, initiated, terminated
from repro.rtec.terms import Var

V = Var("Vessel")

RULES = [
    initiated("stopped", (V,), True, [HappensAt(EventPattern("stop_start", (V,)))]),
    terminated("stopped", (V,), True, [HappensAt(EventPattern("stop_end", (V,)))]),
]


def make_engine(window):
    engine = RTEC(window_seconds=window)
    engine.declare_rules(RULES)
    return engine


class TestRetrospective:
    def test_replays_all_query_times(self):
        engine = make_engine(window=600)
        engine.working_memory.assert_event("stop_start", ("v1",), 100)
        engine.working_memory.assert_event("stop_end", ("v1",), 700)
        results = engine.run_retrospective(slide_seconds=300, until=1200)
        assert [r.query_time for r in results] == [300, 600, 900, 1200]
        # The stop is visible while open and closed once ended.
        assert results[0].intervals("stopped", ("v1",))[0][0] == 100
        assert results[2].intervals("stopped", ("v1",)) == [(100, 700)]

    def test_matches_incremental_stepping(self):
        history = [
            ("stop_start", ("v1",), 100),
            ("stop_end", ("v1",), 450),
            ("stop_start", ("v2",), 500),
        ]
        retrospective = make_engine(window=600)
        for functor, args, time in history:
            retrospective.working_memory.assert_event(functor, args, time)
        retro_results = retrospective.run_retrospective(300, 900)

        incremental = make_engine(window=600)
        incremental_results = []
        for query_time in (300, 600, 900):
            for functor, args, time in history:
                if query_time - 300 < time <= query_time:
                    incremental.working_memory.assert_event(functor, args, time)
            incremental_results.append(incremental.step(query_time))

        for retro, inc in zip(retro_results, incremental_results):
            assert retro.fluents == inc.fluents

    def test_invalid_slide(self):
        with pytest.raises(ValueError, match="slide"):
            make_engine(600).run_retrospective(0, 1000)

    def test_empty_history(self):
        results = make_engine(600).run_retrospective(300, 600)
        assert len(results) == 2
        assert all(r.complex_event_count() == 0 for r in results)
