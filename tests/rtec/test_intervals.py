"""Unit and property tests for the maximal-interval algebra."""

import pytest
from hypothesis import given, strategies as st

from repro.rtec.intervals import (
    OPEN,
    clip_intervals,
    end_points,
    holds_at,
    intersect_intervals,
    intervals_from_points,
    normalize,
    start_points,
    subtract_intervals,
    total_duration,
    union_intervals,
)

point_lists = st.lists(st.integers(min_value=0, max_value=200), max_size=15)


class TestIntervalsFromPoints:
    def test_paper_example(self):
        # "Suppose that F=V is initiated at 10 and 20 and terminated at 25
        # and 30.  In that case F=V holds at all T such that 10 < T <= 25."
        intervals = intervals_from_points([10, 20], [25, 30])
        assert intervals == [(10, 25)]

    def test_open_interval_without_termination(self):
        assert intervals_from_points([10], []) == [(10, OPEN)]

    def test_no_initiation_no_interval(self):
        assert intervals_from_points([], [5, 10]) == []

    def test_termination_before_initiation_ignored(self):
        assert intervals_from_points([10], [5]) == [(10, OPEN)]

    def test_termination_at_initiation_does_not_break(self):
        # broken requires Ts < Tf: termination exactly at Ts has no effect.
        assert intervals_from_points([10], [10]) == [(10, OPEN)]

    def test_two_disjoint_intervals(self):
        intervals = intervals_from_points([10, 30], [20, 40])
        assert intervals == [(10, 20), (30, 40)]

    def test_reinitiation_inside_interval_absorbed(self):
        intervals = intervals_from_points([10, 12, 14], [30])
        assert intervals == [(10, 30)]

    def test_duplicate_points_deduplicated(self):
        intervals = intervals_from_points([10, 10, 10], [20, 20])
        assert intervals == [(10, 20)]

    @given(inits=point_lists, terms=point_lists)
    def test_intervals_sorted_and_disjoint(self, inits, terms):
        intervals = intervals_from_points(inits, terms)
        for (ts1, tf1), (ts2, _tf2) in zip(intervals, intervals[1:]):
            assert ts1 < ts2
            assert tf1 != OPEN and tf1 < ts2  # disjoint, non-adjacent

    @given(inits=point_lists, terms=point_lists)
    def test_every_initiation_covered_or_absorbed(self, inits, terms):
        intervals = intervals_from_points(inits, terms)
        if inits:
            # The value holds right after the earliest initiation.
            first = min(inits)
            assert holds_at(intervals, first + 1) or any(
                ts == first and tf == first + 1 for ts, tf in intervals
            ) or (first + 1) in set(terms) or holds_at(intervals, first + 1)

    @given(inits=point_lists, terms=point_lists,
           probe=st.integers(min_value=0, max_value=201))
    def test_holds_iff_after_init_before_break(self, inits, terms, probe):
        intervals = intervals_from_points(inits, terms)
        if holds_at(intervals, probe):
            # Some initiation lies strictly before the probe...
            assert any(ts < probe for ts in inits)


class TestHoldsAt:
    def test_open_left_endpoint(self):
        intervals = [(10, 20)]
        assert not holds_at(intervals, 10)
        assert holds_at(intervals, 11)

    def test_closed_right_endpoint(self):
        intervals = [(10, 20)]
        assert holds_at(intervals, 20)
        assert not holds_at(intervals, 21)

    def test_open_interval_extends_forever(self):
        assert holds_at([(10, OPEN)], 10**9)

    def test_between_intervals(self):
        intervals = [(10, 20), (30, 40)]
        assert not holds_at(intervals, 25)

    def test_empty(self):
        assert not holds_at([], 5)


class TestNormalize:
    def test_merges_overlapping(self):
        assert normalize([(10, 30), (20, 40)]) == [(10, 40)]

    def test_merges_adjacent(self):
        # (10,20] and (20,30] union to (10,30] under half-open semantics.
        assert normalize([(10, 20), (20, 30)]) == [(10, 30)]

    def test_drops_empty(self):
        assert normalize([(10, 10), (20, 19)]) == []

    def test_sorts(self):
        assert normalize([(30, 40), (10, 20)]) == [(10, 20), (30, 40)]

    def test_open_interval_swallows_rest(self):
        assert normalize([(10, OPEN), (20, 30)]) == [(10, OPEN)]


class TestSetOperations:
    def test_union(self):
        assert union_intervals([(10, 20)], [(15, 30)]) == [(10, 30)]

    def test_intersection(self):
        assert intersect_intervals([(10, 30)], [(20, 40)]) == [(20, 30)]

    def test_intersection_disjoint(self):
        assert intersect_intervals([(10, 20)], [(30, 40)]) == []

    def test_intersection_with_open(self):
        assert intersect_intervals([(10, OPEN)], [(20, 40)]) == [(20, 40)]

    def test_subtract_middle(self):
        assert subtract_intervals([(10, 40)], [(20, 30)]) == [(10, 20), (30, 40)]

    def test_subtract_everything(self):
        assert subtract_intervals([(10, 20)], [(0, 100)]) == []

    def test_subtract_open_tail(self):
        assert subtract_intervals([(10, OPEN)], [(20, OPEN)]) == [(10, 20)]

    @given(a=point_lists, b=point_lists)
    def test_union_commutes(self, a, b):
        ia = intervals_from_points(a, [])
        ib = intervals_from_points(b, [])
        assert union_intervals(ia, ib) == union_intervals(ib, ia)

    @given(inits=point_lists, terms=point_lists,
           probe=st.integers(min_value=0, max_value=220))
    def test_subtract_complement_never_holds(self, inits, terms, probe):
        base = intervals_from_points(inits, terms)
        removed = intervals_from_points(terms, [])
        difference = subtract_intervals(base, removed)
        if holds_at(difference, probe):
            assert holds_at(base, probe)
            assert not holds_at(removed, probe)


class TestClipAndPoints:
    def test_clip_to_window(self):
        intervals = [(0, 50), (80, 120), (150, OPEN)]
        assert clip_intervals(intervals, 60, 100) == [(80, 100), (150, OPEN)]

    def test_clip_preserves_open_right(self):
        assert clip_intervals([(10, OPEN)], 0, 100) == [(10, OPEN)]

    def test_start_points(self):
        assert start_points([(10, 20), (30, OPEN)]) == [10, 30]

    def test_end_points_skip_open(self):
        assert end_points([(10, 20), (30, OPEN)]) == [20]

    def test_total_duration(self):
        assert total_duration([(10, 20), (30, 50)]) == 30

    def test_total_duration_open_needs_horizon(self):
        with pytest.raises(ValueError, match="horizon"):
            total_duration([(10, OPEN)])
        assert total_duration([(10, OPEN)], horizon=100) == 90
