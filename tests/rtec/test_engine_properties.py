"""Property-based tests: the engine versus an independent oracle.

A brute-force reference implementation recomputes ``holdsAt`` for a boolean
fluent directly from the paper's definition — F=V holds at T iff some
initiation occurred strictly before T with no break in between (rules
(1)-(2)) — and random event streams are checked point-for-point against the
engine's maximal intervals.
"""

from hypothesis import given, settings, strategies as st

from repro.rtec.engine import RTEC
from repro.rtec.intervals import holds_at
from repro.rtec.rules import EventPattern, HappensAt, initiated, terminated
from repro.rtec.terms import Var

V = Var("Vessel")

RULES = [
    initiated("f", (V,), True, [HappensAt(EventPattern("init", (V,)))]),
    terminated("f", (V,), True, [HappensAt(EventPattern("term", (V,)))]),
]

event_streams = st.lists(
    st.tuples(
        st.sampled_from(["init", "term"]),
        st.sampled_from(["v1", "v2"]),
        st.integers(min_value=1, max_value=300),
    ),
    max_size=40,
)


def oracle_holds_at(events, vessel, probe):
    """Brute-force paper semantics for a boolean fluent."""
    inits = sorted(t for kind, v, t in events if kind == "init" and v == vessel)
    terms = sorted(t for kind, v, t in events if kind == "term" and v == vessel)
    for ts in inits:
        if ts >= probe:
            continue
        # Broken iff some termination Tf with ts < Tf < probe... note the
        # closed right end: F holds at Tf itself, so the break must be
        # strictly before the probe.
        broken = any(ts < tf < probe for tf in terms)
        if not broken:
            return True
    return False


class TestEngineAgainstOracle:
    @settings(max_examples=150, deadline=None)
    @given(events=event_streams, probe=st.integers(min_value=1, max_value=301))
    def test_holds_at_matches_oracle(self, events, probe):
        engine = RTEC(window_seconds=1000)
        engine.declare_rules(RULES)
        for kind, vessel, time in events:
            engine.working_memory.assert_event(kind, (vessel,), time)
        result = engine.step(400)
        for vessel in ("v1", "v2"):
            expected = oracle_holds_at(events, vessel, probe)
            actual = result.holds_at("f", (vessel,), probe)
            assert actual == expected, (
                f"vessel={vessel} probe={probe} events={sorted(events, key=lambda e: e[2])}"
            )

    @settings(max_examples=100, deadline=None)
    @given(events=event_streams)
    def test_intervals_are_maximal_and_disjoint(self, events):
        engine = RTEC(window_seconds=1000)
        engine.declare_rules(RULES)
        for kind, vessel, time in events:
            engine.working_memory.assert_event(kind, (vessel,), time)
        result = engine.step(400)
        for vessel in ("v1", "v2"):
            intervals = result.intervals("f", (vessel,))
            for (_ts1, tf1), (ts2, _tf2) in zip(intervals, intervals[1:]):
                assert tf1 < ts2, "intervals must be disjoint and ordered"

    @settings(max_examples=100, deadline=None)
    @given(events=event_streams)
    def test_step_is_idempotent(self, events):
        # Re-running recognition at the same query time with unchanged
        # working memory yields identical results.
        engine = RTEC(window_seconds=1000)
        engine.declare_rules(RULES)
        for kind, vessel, time in events:
            engine.working_memory.assert_event(kind, (vessel,), time)
        first = engine.step(400)
        second = engine.step(400)
        assert first.fluents == second.fluents

    @settings(max_examples=80, deadline=None)
    @given(
        events=event_streams,
        split=st.integers(min_value=50, max_value=250),
    )
    def test_incremental_equals_batch_for_large_window(self, events, split):
        # With a window covering all of history, asserting events in two
        # rounds (split by occurrence time) and stepping twice must agree
        # with asserting everything and stepping once.
        batch = RTEC(window_seconds=10_000)
        batch.declare_rules(RULES)
        for kind, vessel, time in events:
            batch.working_memory.assert_event(kind, (vessel,), time)
        expected = batch.step(400)

        staged = RTEC(window_seconds=10_000)
        staged.declare_rules(RULES)
        for kind, vessel, time in events:
            if time <= split:
                staged.working_memory.assert_event(kind, (vessel,), time)
        staged.step(split)
        for kind, vessel, time in events:
            if time > split:
                staged.working_memory.assert_event(kind, (vessel,), time)
        actual = staged.step(400)
        assert actual.fluents == expected.fluents

    @settings(max_examples=80, deadline=None)
    @given(events=event_streams)
    def test_holds_at_consistent_with_intervals(self, events):
        # holdsAt(F=V, T) iff T in some maximal interval — the paper's
        # defining equivalence between holdsAt and holdsFor.
        engine = RTEC(window_seconds=1000)
        engine.declare_rules(RULES)
        for kind, vessel, time in events:
            engine.working_memory.assert_event(kind, (vessel,), time)
        result = engine.step(400)
        intervals = result.intervals("f", ("v1",))
        for probe in range(0, 401, 13):
            assert result.holds_at("f", ("v1",), probe) == holds_at(
                intervals, probe
            )
