"""Figure 6(b): online mobility tracking cost per window — large ranges.

Paper setup: omega of 6 h and 24 h, beta of 0.5-4 h.  The same linear
pattern as Figure 6(a) repeats at a larger scale: "in the worst case of a
window spanning 24 hours, critical points are reported in only 72 seconds
based on the bulk of data accumulated over each 4-hour period".
"""

import pytest

from harness import benchmark_fleet, record_result, replay_tracking
from repro.tracking import WindowSpec

RANGES_HOURS = (6, 24)
SLIDES_HOURS = (0.5, 1, 1.5, 2, 4)

_results: dict[tuple[float, float], dict] = {}


@pytest.fixture(scope="module", autouse=True)
def emit_report():
    """Write the Figure 6(b) series once the sweep completes."""
    yield
    if len(_results) < len(RANGES_HOURS) * len(SLIDES_HOURS):
        return
    lines = ["omega_hours  beta_hours  avg_slide_seconds"]
    for (range_hours, slide_hours), stats in sorted(_results.items()):
        lines.append(
            f"{range_hours:>11}  {slide_hours:>10}  "
            f"{stats['average_slide_seconds']:.4f}"
        )
    record_result("fig6b_tracking_large_windows", lines)
    for range_hours in RANGES_HOURS:
        series = [
            _results[(range_hours, slide)]["average_slide_seconds"]
            for slide in SLIDES_HOURS
        ]
        assert series[-1] > series[0], (
            f"expected cost to grow with beta for omega={range_hours}h: {series}"
        )


@pytest.mark.parametrize("range_hours", RANGES_HOURS)
@pytest.mark.parametrize("slide_hours", SLIDES_HOURS)
def test_tracking_cost_large_windows(benchmark, range_hours, slide_hours):
    _, _, stream = benchmark_fleet()
    window = WindowSpec.of_hours(range_hours, slide_hours)

    def run():
        return replay_tracking(stream, window)

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    _results[(range_hours, slide_hours)] = stats
    benchmark.extra_info["avg_slide_seconds"] = stats["average_slide_seconds"]
    # Real-time budget: a slide's processing finishes well before the next.
    assert stats["average_slide_seconds"] < slide_hours * 3600
