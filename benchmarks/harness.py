"""Shared infrastructure for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper's Section 5,
scaled from the 6,425-vessel / 3-month IMIS dataset down to a synthetic
fleet that runs on a laptop.  Absolute times therefore differ from the
paper; the *shapes* — linear growth with the slide step, compression around
94 %, CE recognition time growing with the window and halving with two
processors — are the reproduction targets (see EXPERIMENTS.md).

The module caches the expensive artifacts (fleet, stream, movement events)
per configuration so the parameter sweeps share them.
"""

import time
from functools import lru_cache
from pathlib import Path

from repro import obs
from repro.ais.stream import StreamReplayer, TimedArrival
from repro.obs.report import build_pipeline_report, write_report
from repro.pipeline import SurveillanceSystem, SystemConfig
from repro.simulator import FleetSimulator, build_aegean_world
from repro.tracking import (
    Compressor,
    MobilityTracker,
    TrackingParameters,
    WindowSpec,
)

#: Benchmark fleet size (the paper's N = 6,425, scaled down ~40x).
FLEET_SIZE = 150
#: Simulated period covered by the benchmark stream.
DURATION_SECONDS = 24 * 3600

RESULTS_DIR = Path(__file__).parent / "results"


@lru_cache(maxsize=1)
def benchmark_world():
    """The shared 10-port / 35-area world."""
    return build_aegean_world()


@lru_cache(maxsize=4)
def benchmark_fleet(size: int = FLEET_SIZE, duration: int = DURATION_SECONDS):
    """A cached mixed fleet with its merged stream.

    Returns ``(vessels, specs, stream)``; everything is deterministic for
    the fixed seed, so repeated benchmark runs see identical input.
    """
    simulator = FleetSimulator(
        benchmark_world(), seed=2015, duration_seconds=duration
    )
    vessels = simulator.build_mixed_fleet(size)
    specs = {vessel.mmsi: vessel.spec for vessel in vessels}
    stream = simulator.positions(vessels)
    return vessels, specs, stream


def replay_tracking(
    stream,
    window: WindowSpec,
    parameters: TrackingParameters | None = None,
):
    """One full tracking replay under a window spec.

    Returns a dict with the per-slide average tracking cost (the Figure 6/7
    metric: updating the window with fresh locations, evicting expired ones,
    detecting trajectory events and reporting critical points) plus stream
    and compression statistics.
    """
    tracker = MobilityTracker(parameters or TrackingParameters())
    compressor = Compressor(window)
    arrivals = [TimedArrival(p.timestamp, p) for p in stream]
    replayer = StreamReplayer(arrivals, window.slide_seconds)

    slide_costs = []
    total_events = 0
    total_critical = 0
    for query_time, batch in replayer.batches():
        started = time.perf_counter()
        events = tracker.process_batch(batch)
        fresh, expired = compressor.slide(
            events, query_time, raw_position_count=len(batch)
        )
        slide_costs.append(time.perf_counter() - started)
        total_events += len(events)
        total_critical += len(fresh)
        del expired

    return {
        "slides": len(slide_costs),
        "average_slide_seconds": (
            sum(slide_costs) / len(slide_costs) if slide_costs else 0.0
        ),
        "max_slide_seconds": max(slide_costs, default=0.0),
        "positions": len(stream),
        "movement_events": total_events,
        "critical_points": total_critical,
        "compression_ratio": compressor.statistics.compression_ratio,
    }


def collect_movement_events(stream, parameters=None):
    """Run the tracker over a whole stream; per-slide event batches.

    Returns ``[(query_time, events)]`` with an hourly slide — the ME feed
    the CE recognition benchmarks replay into RTEC.
    """
    tracker = MobilityTracker(parameters or TrackingParameters())
    arrivals = [TimedArrival(p.timestamp, p) for p in stream]
    batches = []
    query_time = 0
    for query_time, batch in StreamReplayer(arrivals, 3600).batches():
        batches.append((query_time, tracker.process_batch(batch)))
    final = tracker.finalize()
    if batches and final:
        batches[-1] = (batches[-1][0], batches[-1][1] + final)
    return batches


def per_vessel_synopses(stream, parameters=None):
    """Full-history critical points per vessel (no window eviction).

    Used by the accuracy/compression sweeps of Figures 8 and 9.  Each
    vessel's first and last reported positions are added as anchor points:
    the paper's RMSE measures the deviation of *discarded intermediate*
    locations, interpolated "between the pair of adjacent critical points
    retained immediately before and after" — the trajectory endpoints are
    always known to the system (they sit in the live window), so clamping
    hours of trace to a lone mid-voyage critical point would measure an
    artifact, not compression loss.
    """
    from collections import defaultdict

    from repro.tracking.compressor import merge_events_into_critical_points
    from repro.tracking.types import CriticalPoint, MovementEventType

    tracker = MobilityTracker(parameters or TrackingParameters())
    events = tracker.process_batch(stream) + tracker.finalize()
    points = merge_events_into_critical_points(events)
    synopses = defaultdict(list)
    for point in points:
        synopses[point.mmsi].append(point)
    originals = defaultdict(list)
    for position in stream:
        originals[position.mmsi].append(position)

    def anchor(position):
        return CriticalPoint(
            mmsi=position.mmsi,
            lon=position.lon,
            lat=position.lat,
            timestamp=position.timestamp,
            annotations=frozenset({MovementEventType.SPEED_CHANGE}),
        )

    for mmsi, track in originals.items():
        synopsis = synopses.setdefault(mmsi, [])
        times = {p.timestamp for p in synopsis}
        if track[0].timestamp not in times:
            synopsis.insert(0, anchor(track[0]))
        if track[-1].timestamp not in times:
            synopsis.append(anchor(track[-1]))
    return dict(originals), dict(synopses)


def run_tracking_backend_sweep(
    backends: tuple[str, ...] | None = None,
    fleet_size: int = FLEET_SIZE,
    duration: int = DURATION_SECONDS,
    window: WindowSpec | None = None,
    rounds: int = 4,
) -> dict:
    """Tracking-kernel throughput per backend (see docs/PERFORMANCE.md).

    Replays the standard benchmark stream through every registered
    Mobility Tracker kernel in *interleaved* rounds (scalar, array,
    numpy, scalar, ...) and keeps each backend's best round, so CPU
    frequency drift hits all kernels alike instead of biasing whichever
    ran last.  Only the ``process_batch`` calls are timed — this is the
    kernel's own throughput, without compression or IPC.

    Before reporting, the sweep asserts the per-backend event streams
    are identical (the columnar kernels' byte-for-byte parity
    guarantee, docs/TRACKING.md): a speedup can never come from dropped
    or reordered work.  Returns the ``tracking_backends`` section that
    ``python benchmarks/harness.py --tracking-sweep`` embeds in
    ``BENCH_pipeline.json``.
    """
    from repro.tracking.backends import available_backends, create_tracker

    backends = backends or tuple(available_backends())
    window = window or WindowSpec.of_minutes(120, 30)
    _, _, stream = benchmark_fleet(fleet_size, duration)
    arrivals = [TimedArrival(p.timestamp, p) for p in stream]
    batches = [
        batch
        for _, batch in StreamReplayer(arrivals, window.slide_seconds).batches()
    ]

    best: dict[str, float] = {name: float("inf") for name in backends}
    event_streams: dict[str, list] = {}
    for _ in range(rounds):
        for name in backends:
            tracker = create_tracker(backend=name)
            events = []
            elapsed = 0.0
            for batch in batches:
                started = time.perf_counter()
                produced = tracker.process_batch(batch)
                elapsed += time.perf_counter() - started
                events.extend(produced)
            events.extend(tracker.finalize())
            best[name] = min(best[name], elapsed)
            event_streams[name] = events

    reference = event_streams[backends[0]]
    identical = all(
        event_streams[name] == reference for name in backends[1:]
    )
    if not identical:  # pragma: no cover - parity is tested, not expected
        raise AssertionError(
            "tracking backends disagree on the benchmark stream; "
            "run tests/tracking/test_columnar_parity.py"
        )

    scalar_seconds = best.get("scalar", best[backends[0]])
    runs = [
        {
            "backend": name,
            "best_seconds": best[name],
            "positions_per_sec": (
                len(stream) / best[name] if best[name] > 0 else 0.0
            ),
            "speedup_vs_scalar": (
                scalar_seconds / best[name] if best[name] > 0 else 0.0
            ),
        }
        for name in backends
    ]
    return {
        "fleet_size": fleet_size,
        "duration_seconds": duration,
        "positions": len(stream),
        "slides": len(batches),
        "rounds": rounds,
        "movement_events": len(reference),
        "identical_events": identical,
        "runs": runs,
    }


#: Default landing spot of the machine-readable pipeline benchmark: the
#: repo root, so the perf trajectory (`BENCH_*.json`) accumulates per PR.
BENCH_PIPELINE_PATH = Path(__file__).parent.parent / "BENCH_pipeline.json"


def run_pipeline_benchmark(
    fleet_size: int = FLEET_SIZE,
    duration: int = DURATION_SECONDS,
    window: WindowSpec | None = None,
    json_path: Path | str | None = None,
    shards: int | None = None,
) -> dict:
    """Replay the *whole* pipeline under a fresh metrics registry.

    Unlike the per-figure benches (which isolate one component each), this
    drives :class:`SurveillanceSystem` end to end — tracking, staging,
    reconstruction, loading, recognition — and returns the standard
    observability report: per-phase p50/p95 latencies, events/sec
    throughput and the compression ratio.  When ``json_path`` is given the
    report is also written there; ``python benchmarks/harness.py`` writes
    it to :data:`BENCH_PIPELINE_PATH` so every PR can refresh the
    repo-root perf trajectory.

    ``shards`` selects the execution runtime: ``None`` (default) runs the
    in-process :class:`SurveillanceSystem`; any explicit count — including
    ``1`` — runs :class:`~repro.runtime.ParallelSurveillanceSystem` with
    that many worker processes, so a 1-shard run measures the runtime's
    IPC floor.  Outputs are identical either way; only the timings and the
    report's ``runtime`` section change.
    """
    window = window or WindowSpec.of_minutes(120, 30)
    _, specs, stream = benchmark_fleet(fleet_size, duration)
    with obs.activate(obs.MetricsRegistry()) as registry:
        if shards is not None:
            from repro.runtime import ParallelSurveillanceSystem

            system = ParallelSurveillanceSystem(
                benchmark_world(), specs, SystemConfig(window=window),
                shards=shards,
            )
        else:
            system = SurveillanceSystem(
                benchmark_world(), specs, SystemConfig(window=window)
            )
        replayer = StreamReplayer(
            [TimedArrival(p.timestamp, p) for p in stream],
            window.slide_seconds,
        )
        for query_time, batch in replayer.batches():
            system.process_slide(batch, query_time)
        system.finalize()
        report = build_pipeline_report(
            system,
            registry,
            config={
                "benchmark": "pipeline",
                "fleet_size": fleet_size,
                "duration_seconds": duration,
                "window_range_seconds": window.range_seconds,
                "window_slide_seconds": window.slide_seconds,
                "seed": 2015,
                "shards": shards or 1,
            },
        )
        if shards is not None:
            system.close()
    if json_path is not None:
        write_report(report, json_path)
    return report


def run_shard_sweep(
    shard_counts: tuple[int, ...] = (1, 2, 4),
    fleet_size: int = FLEET_SIZE,
    duration: int = DURATION_SECONDS,
    window: WindowSpec | None = None,
) -> dict:
    """Pipeline throughput under the process-parallel runtime, per shard count.

    Every shard count — *including 1* — runs on the sharded runtime, so
    the speedup column isolates parallelism from IPC overhead: it divides
    each run's processing time into the 1-shard *runtime* baseline (the
    single-process system's figure is reported separately as
    ``single_process_seconds``).  Returns the ``shard_sweep`` section that
    ``python benchmarks/harness.py --shard-sweep`` embeds in
    ``BENCH_pipeline.json``.
    """
    single = run_pipeline_benchmark(fleet_size, duration, window, shards=None)
    runs = [
        (count, run_pipeline_benchmark(fleet_size, duration, window,
                                       shards=count))
        for count in shard_counts
    ]
    by_count = dict(runs)
    baseline = by_count.get(1, runs[0][1])
    baseline_seconds = baseline["throughput"]["processing_seconds"]
    entries = []
    for count, report in runs:
        seconds = report["throughput"]["processing_seconds"]
        entries.append({
            "shards": count,
            "processing_seconds": seconds,
            "positions_per_sec": report["throughput"]["positions_per_sec"],
            "speedup_vs_1shard": (
                baseline_seconds / seconds if seconds > 0 else 0.0
            ),
            "restarts": report.get("runtime", {}).get("restarts", 0),
        })
    return {
        "shard_counts": list(shard_counts),
        "single_process_seconds": single["throughput"]["processing_seconds"],
        "runs": entries,
    }


def run_service_benchmark(
    fleet_size: int = FLEET_SIZE,
    duration: int = DURATION_SECONDS,
    window: WindowSpec | None = None,
    wal_dir: str | None = None,
    wal_fsync: str = "batch",
) -> dict:
    """Measure the live service end to end over real TCP sockets.

    Encodes the benchmark stream as raw ``!AIVDM`` sentences, stands up a
    :class:`~repro.service.ServiceSupervisor` on ephemeral ports, replays
    the sentences through the ingest listener while a feed subscriber
    collects every slide line, then drains gracefully.  Returns the
    ``service`` section of ``BENCH_pipeline.json``: ingest p50/p99 latency
    (socket enqueue to batcher dequeue), sentences/sec and alerts/sec.

    ``wal_dir`` turns on the write-ahead ingest journal for the run —
    the knob ``run_chaos_benchmark`` uses to price durability.
    """
    import asyncio
    import json

    from repro.ais import encode_position_report, wrap_aivdm
    from repro.ais.messages import PositionReport
    from repro.service import ServiceConfig, ServiceSupervisor

    window = window or WindowSpec.of_minutes(120, 30)
    _, specs, stream = benchmark_fleet(fleet_size, duration)
    sentences = []
    for position in stream:
        payload, fill = encode_position_report(PositionReport(
            message_type=1,
            mmsi=position.mmsi,
            lon=position.lon,
            lat=position.lat,
            speed_knots=10.0,
            course_degrees=90.0,
            second_of_minute=position.timestamp % 60,
        ))
        sentences.append((position.timestamp, wrap_aivdm(payload, fill)))

    async def drive(supervisor):
        await supervisor.start()
        ports = supervisor.ports()
        # A slide line carries every fresh critical point, easily beyond
        # the 64 KiB default StreamReader limit at benchmark fleet sizes.
        feed_reader, feed_writer = await asyncio.open_connection(
            supervisor.service.host, ports["feed"], limit=1 << 24
        )
        while supervisor.feed.subscriber_count < 1:
            await asyncio.sleep(0.005)
        _, writer = await asyncio.open_connection(
            supervisor.service.host, ports["ingest"]
        )
        started = time.perf_counter()
        for receive_time, sentence in sentences:
            writer.write(f"{receive_time}\t{sentence}\n".encode("ascii"))
            if writer.transport.get_write_buffer_size() > 1 << 16:
                await writer.drain()
        await writer.drain()
        writer.close()
        await writer.wait_closed()
        while supervisor.ingest.open_connections:
            await asyncio.sleep(0.005)
        await supervisor.drain_and_stop()
        elapsed = time.perf_counter() - started
        lines = []
        while True:
            raw = await feed_reader.readline()
            if not raw:
                break
            lines.append(json.loads(raw.decode("utf-8")))
        feed_writer.close()
        try:
            await feed_writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
        return elapsed, lines

    with obs.activate(obs.MetricsRegistry()) as registry:
        supervisor = ServiceSupervisor(
            benchmark_world(),
            specs,
            SystemConfig(window=window),
            # The replay is unpaced (no receiver sends 24 h of traffic in
            # seconds), so size the queue for the whole stream: the section
            # measures service overhead on the full pipeline, not the
            # load-shedding policy (tests/service/test_soak_parity.py
            # covers shedding).
            ServiceConfig(
                ingest_port=0,
                feed_port=0,
                http_port=0,
                ingest_queue_size=len(sentences) + 1,
                wal_dir=wal_dir,
                wal_fsync=wal_fsync,
            ),
        )
        elapsed, feed_lines = asyncio.run(drive(supervisor))
        latency = registry.histogram("service.ingest.latency_seconds")
        alerts = supervisor.alert_ring.last_seq
        return {
            "fleet_size": fleet_size,
            "duration_seconds": duration,
            "sentences": len(sentences),
            "ingested": supervisor.queue.put_count,
            "shed": supervisor.queue.shed_count,
            "slides": supervisor.batcher.slides_processed,
            "feed_lines": len(feed_lines),
            "alerts": alerts,
            "elapsed_seconds": elapsed,
            "sentences_per_sec": (
                len(sentences) / elapsed if elapsed > 0 else 0.0
            ),
            "alerts_per_sec": alerts / elapsed if elapsed > 0 else 0.0,
            "ingest_latency_ms": {
                "p50": latency.quantile(0.5) * 1000.0,
                "p99": latency.quantile(0.99) * 1000.0,
                "mean": latency.mean * 1000.0,
                "max": (latency.max if latency.count else 0.0) * 1000.0,
            },
        }


def run_gateway_benchmark(
    fleet_size: int = FLEET_SIZE,
    duration: int = DURATION_SECONDS,
    window: WindowSpec | None = None,
    gateways: int = 2,
    runtimes: int = 4,
) -> dict:
    """Measure the scale-out tier end to end: a 2×4 gateway cluster.

    Encodes the benchmark stream as timestamped sentences, splits it
    round-robin across the gateway nodes (each substream stays
    time-ordered, the watermark monotonicity contract), replays both
    halves concurrently through real sockets, and drains.  Returns the
    ``gateway`` section of ``BENCH_pipeline.json``: aggregate alerts/sec
    through the merged feed plus per-node ingest p50/p99 (gateway link
    queue wait, the scale-out tier's own overhead; see docs/GATEWAY.md).
    """
    import asyncio
    import json

    from repro.ais import encode_position_report, wrap_aivdm
    from repro.ais.messages import PositionReport
    from repro.gateway import GatewayCluster, GatewayClusterConfig

    window = window or WindowSpec.of_minutes(120, 30)
    _, specs, stream = benchmark_fleet(fleet_size, duration)
    sentences = []
    for position in stream:
        payload, fill = encode_position_report(PositionReport(
            message_type=1,
            mmsi=position.mmsi,
            lon=position.lon,
            lat=position.lat,
            speed_knots=10.0,
            course_degrees=90.0,
            second_of_minute=position.timestamp % 60,
        ))
        sentences.append((position.timestamp, wrap_aivdm(payload, fill)))
    # Round-robin deal: each gateway's substream keeps the stream's time
    # order, satisfying the per-source watermark monotonicity contract.
    streams = [sentences[g::gateways] for g in range(gateways)]

    async def drive():
        cluster = GatewayCluster(
            benchmark_world(),
            specs,
            SystemConfig(window=window, ce_scope="vessel"),
            GatewayClusterConfig(
                gateways=gateways,
                runtimes=runtimes,
                # Unpaced replay: size every buffer for the whole stream
                # so the section measures tier overhead, not shedding
                # (tests/service/test_transports.py covers shedding).
                link_queue_size=len(sentences) + 1,
                ingest_queue_size=len(sentences) + 1,
            ),
        )
        await cluster.start()
        started = time.perf_counter()

        async def feed(gateway: int) -> None:
            session = await cluster.connect_ingest(gateway)
            for receive_time, sentence in streams[gateway]:
                await session.send(f"{receive_time}\t{sentence}")
            await session.close()

        await asyncio.gather(*(feed(g) for g in range(gateways)))
        await cluster.drain_and_stop()
        return cluster, time.perf_counter() - started

    with obs.activate(obs.MetricsRegistry()):
        cluster, elapsed = asyncio.run(drive())

    merged = [json.loads(line) for line in cluster.merged_lines]
    alerts = sum(len(payload["alerts"]) for payload in merged)
    nodes = []
    for node in cluster.nodes:
        latency = node.registry.histogram("gateway.ingest.latency_seconds")
        counters = node.registry.snapshot()["counters"]
        nodes.append({
            "name": node.name,
            "lines": int(counters.get("gateway.ingest.lines", 0)),
            "watermarks": int(counters.get("gateway.watermarks", 0)),
            "link_shed": int(counters.get("gateway.link.shed", 0)),
            "ingest_latency_ms": {
                "p50": latency.quantile(0.5) * 1000.0,
                "p99": latency.quantile(0.99) * 1000.0,
                "mean": latency.mean * 1000.0,
                "max": (latency.max if latency.count else 0.0) * 1000.0,
            },
        })
    return {
        "fleet_size": fleet_size,
        "duration_seconds": duration,
        "gateways": gateways,
        "runtimes": runtimes,
        "sentences": len(sentences),
        "merged_lines": len(merged),
        "alerts": alerts,
        "elapsed_seconds": elapsed,
        "sentences_per_sec": len(sentences) / elapsed if elapsed > 0 else 0.0,
        "alerts_per_sec": alerts / elapsed if elapsed > 0 else 0.0,
        "nodes": nodes,
    }


def run_partition_drill(
    fleet_size: int = 60,
    duration: int = 8 * 3600,
    window: WindowSpec | None = None,
    gateways: int = 2,
    runtimes: int = 2,
) -> dict:
    """Closed-loop self-healing under a seeded network partition.

    The ``self_healing`` section of ``BENCH_pipeline.json`` (see
    docs/RESILIENCE.md).  A gateway cluster runs on the ``chaos+tcp``
    transport; mid-stream the drill severs every gateway→runtime0 ingest
    path at the session layer (:func:`repro.transport.chaosnet.sever`)
    and lets the :class:`~repro.gateway.health.ClusterSupervisor` close
    the loop unaided: heartbeats keep the failure detectors fed, the
    ``down`` verdict triggers a supervised crash+restart, and the
    restarted runtime's fresh ephemeral port escapes the partition.  A
    :class:`~repro.service.feedclient.ResumableFeedReader` subscribed to
    the merged feed is forcibly evicted during the incident and must
    come back through the ``RESUME`` handshake.

    The drill *asserts* its own acceptance criteria — the faulted run's
    merged feed and the resumed subscriber's stream must both be
    byte-identical to an undisturbed oracle run, with zero ring-evicted
    gap lines — and records the measured detection and failover
    latency (MTTR evidence).
    """
    import asyncio
    import contextlib
    import tempfile

    from repro.ais import encode_position_report, wrap_aivdm
    from repro.ais.messages import PositionReport
    from repro.gateway import GatewayCluster, GatewayClusterConfig
    from repro.service import ResumableFeedReader
    from repro.transport import chaosnet

    window = window or WindowSpec.of_minutes(120, 30)
    _, specs, stream = benchmark_fleet(fleet_size, duration)
    sentences = []
    for position in stream:
        payload, fill = encode_position_report(PositionReport(
            message_type=1,
            mmsi=position.mmsi,
            lon=position.lon,
            lat=position.lat,
            speed_knots=10.0,
            course_degrees=90.0,
            second_of_minute=position.timestamp % 60,
        ))
        sentences.append((position.timestamp, wrap_aivdm(payload, fill)))
    streams = [sentences[g::gateways] for g in range(gateways)]
    midpoint = sentences[len(sentences) // 2][0]
    first = [[p for p in s if p[0] <= midpoint] for s in streams]
    second = [[p for p in s if p[0] > midpoint] for s in streams]

    async def poll(predicate, timeout: float = 30.0) -> None:
        deadline = time.monotonic() + timeout
        while not predicate():
            if time.monotonic() > deadline:
                raise TimeoutError("partition drill timed out while polling")
            await asyncio.sleep(0.005)

    async def quiesce(cluster) -> None:
        await poll(lambda: all(
            link.depth == 0 for node in cluster.nodes for link in node.links
        ))
        await poll(lambda: all(
            len(supervisor.queue) == 0
            for index, supervisor in enumerate(cluster.supervisors)
            if not cluster.is_crashed(index)
        ))
        await asyncio.sleep(0.05)

    async def pump(cluster, halves) -> None:
        async def one(gateway: int, half) -> None:
            session = await cluster.connect_ingest(gateway)
            try:
                for receive_time, sentence in half:
                    await session.send(f"{receive_time}\t{sentence}")
            finally:
                await session.close()

        await asyncio.gather(*(one(g, h) for g, h in enumerate(halves)))

    async def run(wal_root: str, fault: bool):
        cluster = GatewayCluster(
            benchmark_world(),
            specs,
            SystemConfig(window=window, ce_scope="vessel"),
            GatewayClusterConfig(
                gateways=gateways,
                runtimes=runtimes,
                backend_transport="chaos+tcp",
                link_queue_size=len(sentences) + 1,
                ingest_queue_size=len(sentences) + 1,
                wal_root=wal_root,
                link_down_seconds=0.25,
            ),
        )
        await cluster.start()
        supervisor = cluster.start_supervisor(run=False)
        host = cluster.cluster.host
        hub = cluster.aggregator.hub
        reader = ResumableFeedReader("tcp", host, hub.port)
        received: list[str] = []

        async def consume() -> None:
            async for line in reader.lines():
                received.append(line)

        consumer = asyncio.ensure_future(consume())
        try:
            await poll(lambda: hub.subscriber_count == 1)
            await pump(cluster, first)
            await quiesce(cluster)

            detection_ms = failover_ms = 0.0
            if fault:
                chaosnet.sever(host, cluster.supervisors[0].ingest.port)
                # The supervisor closes the loop by itself: heartbeats
                # feed the detectors, the down verdict triggers a
                # supervised restart, the fresh port escapes the sever.
                while not supervisor.incidents:
                    supervisor.tick()
                    await supervisor.check_once()
                    await asyncio.sleep(0.02)
                incident = supervisor.incidents[0]
                detection_ms = incident["detection_seconds"] * 1000.0
                failover_ms = incident["failover_seconds"] * 1000.0
                # Kick the subscriber mid-incident: it must come back
                # through the RESUME handshake, not stay connected.
                for subscriber in list(hub._subscribers):
                    hub._evict(subscriber)
                await poll(lambda: hub.subscriber_count == 1)

            await pump(cluster, second)
            await cluster.drain_and_stop()
            await poll(
                lambda: len(received) >= len(cluster.merged_lines),
                timeout=10.0,
            )
        finally:
            chaosnet.clear_partitions()
            reader.stop()
            consumer.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await consumer
        return cluster, received, reader, supervisor, detection_ms, failover_ms

    with tempfile.TemporaryDirectory(prefix="drill-oracle-") as oracle_root:
        with obs.activate(obs.MetricsRegistry()):
            oracle_cluster, oracle_received, _, _, _, _ = asyncio.run(
                run(oracle_root, fault=False)
            )
    oracle_lines = list(oracle_cluster.merged_lines)

    with tempfile.TemporaryDirectory(prefix="drill-fault-") as fault_root:
        with obs.activate(obs.MetricsRegistry()) as registry:
            (cluster, received, reader, supervisor,
             detection_ms, failover_ms) = asyncio.run(
                run(fault_root, fault=True)
            )
            gap_lines = int(
                registry.counter("service.feed.resume_gap_lines").value
            )

    byte_identical = cluster.merged_lines == oracle_lines
    subscriber_gapless = received == cluster.merged_lines
    result = {
        "fleet_size": fleet_size,
        "duration_seconds": duration,
        "gateways": gateways,
        "runtimes": runtimes,
        "sentences": len(sentences),
        "merged_lines": len(cluster.merged_lines),
        "detection_ms": detection_ms,
        "failover_ms": failover_ms,
        "mttr_ms": detection_ms + failover_ms,
        "restarts": supervisor.incidents[0]["restarts"],
        "incidents": len(supervisor.incidents),
        "feed_gap_lines": gap_lines,
        "subscriber_reconnects": reader.reconnects,
        "subscriber_lines": len(received),
        "oracle_subscriber_gapless": oracle_received == oracle_lines,
        "byte_identical": byte_identical,
        "subscriber_gapless": subscriber_gapless,
    }
    if not (byte_identical and subscriber_gapless and gap_lines == 0):
        raise AssertionError(
            f"partition drill failed its acceptance criteria: {result}"
        )
    return result


def run_chaos_benchmark(
    fleet_size: int = FLEET_SIZE,
    duration: int = DURATION_SECONDS,
    window: WindowSpec | None = None,
) -> dict:
    """Price the durability layer: WAL overhead and recovery time.

    Two measurements for the ``chaos`` section of ``BENCH_pipeline.json``
    (see docs/RESILIENCE.md):

    * **WAL steady-state overhead** — the service benchmark twice on the
      same stream, without and with the write-ahead ingest journal
      (``fsync=batch``, the intended operating point); the overhead is
      the relative slowdown of the journaled run.  Target: < 15 %.
    * **Recovery time** — a journal pre-populated with the whole stream
      is replayed through a fresh supervisor (exactly the restart path),
      timing the replay and the subsequent drain.
    """
    import asyncio
    import tempfile

    from repro.ais import encode_position_report, wrap_aivdm
    from repro.ais.messages import PositionReport
    from repro.resilience import IngestJournal
    from repro.service import ServiceConfig, ServiceSupervisor

    window = window or WindowSpec.of_minutes(120, 30)
    baseline = run_service_benchmark(fleet_size, duration, window)
    with tempfile.TemporaryDirectory(prefix="bench-wal-") as wal_dir:
        journaled = run_service_benchmark(
            fleet_size, duration, window, wal_dir=wal_dir
        )
    base_seconds = baseline["elapsed_seconds"]
    wal_seconds = journaled["elapsed_seconds"]
    overhead_pct = (
        (wal_seconds - base_seconds) / base_seconds * 100.0
        if base_seconds > 0 else 0.0
    )

    _, specs, stream = benchmark_fleet(fleet_size, duration)
    with tempfile.TemporaryDirectory(prefix="bench-recovery-") as recovery_dir:
        journal = IngestJournal(recovery_dir)
        for position in stream:
            payload, fill = encode_position_report(PositionReport(
                message_type=1,
                mmsi=position.mmsi,
                lon=position.lon,
                lat=position.lat,
                speed_knots=10.0,
                course_degrees=90.0,
                second_of_minute=position.timestamp % 60,
            ))
            journal.append(position.timestamp, wrap_aivdm(payload, fill))
        journal.sync()
        journal.close()

        async def recover():
            supervisor = ServiceSupervisor(
                benchmark_world(),
                specs,
                SystemConfig(window=window),
                ServiceConfig(
                    ingest_port=0, feed_port=0, http_port=0,
                    wal_dir=recovery_dir,
                ),
            )
            started = time.perf_counter()
            await supervisor.start()  # journal replay happens in here
            replay_seconds = time.perf_counter() - started
            await supervisor.drain_and_stop()
            drained_seconds = time.perf_counter() - started
            return supervisor.recovered_records, replay_seconds, drained_seconds

        with obs.activate(obs.MetricsRegistry()):
            records, replay_seconds, drained_seconds = asyncio.run(recover())

    return {
        "fleet_size": fleet_size,
        "duration_seconds": duration,
        "wal_overhead": {
            "fsync": "batch",
            "baseline_elapsed_seconds": base_seconds,
            "wal_elapsed_seconds": wal_seconds,
            "overhead_pct": overhead_pct,
            "target_pct": 15.0,
            "sentences": baseline["sentences"],
        },
        "recovery": {
            "journaled_records": records,
            "replay_seconds": replay_seconds,
            "replay_records_per_sec": (
                records / replay_seconds if replay_seconds > 0 else 0.0
            ),
            "drained_seconds": drained_seconds,
        },
    }


def run_pairwise_benchmark(
    fleet_size: int = FLEET_SIZE,
    duration: int = DURATION_SECONDS,
    window: WindowSpec | None = None,
) -> dict:
    """Price the pairwise layer: index build, candidate pairs, events/sec.

    Replays the rendezvous fixture embedded in a mixed fleet through the
    pipeline with ``pairwise=True`` (see docs/SPATIAL.md) and returns the
    ``pairwise`` section of ``BENCH_pipeline.json``: per-slide grid-index
    build p50/p95, candidate pairs screened per slide versus the
    brute-force O(n²) pair count (the O(n·k) evidence), pair facts and
    pairwise alerts per second of processing time.
    """
    from repro.maritime.pairwise.rules import PAIRWISE_CE_NAMES

    window = window or WindowSpec.of_minutes(120, 30)
    simulator = FleetSimulator(
        benchmark_world(), seed=2015, duration_seconds=duration
    )
    vessels = simulator.build_scenario_rendezvous()
    vessels += simulator.build_mixed_fleet(max(0, fleet_size - len(vessels)))
    specs = {vessel.mmsi: vessel.spec for vessel in vessels}
    stream = simulator.positions(vessels)

    with obs.activate(obs.MetricsRegistry()) as registry:
        system = SurveillanceSystem(
            benchmark_world(), specs,
            SystemConfig(window=window, pairwise=True),
        )
        replayer = StreamReplayer(
            [TimedArrival(p.timestamp, p) for p in stream],
            window.slide_seconds,
        )
        pairwise_alerts = 0
        slides = 0
        started = time.perf_counter()
        for query_time, batch in replayer.batches():
            report = system.process_slide(batch, query_time)
            slides += 1
            pairwise_alerts += sum(
                1 for alert in report.alerts if alert.kind in PAIRWISE_CE_NAMES
            )
        final = system.finalize()
        elapsed = time.perf_counter() - started
        pairwise_alerts += sum(
            1 for alert in final.alerts if alert.kind in PAIRWISE_CE_NAMES
        )
        snapshot = registry.snapshot()

    # The index-build span nests under the slide span during processing
    # and sits at top level during finalize; report the dominant path.
    builds = [
        stats
        for path, stats in sorted(snapshot["spans"].items())
        if path.endswith("pairwise.index_build")
    ]
    index_build = max(builds, key=lambda stats: stats["count"], default=None)
    candidate_pairs = snapshot["counters"].get("pairwise.candidate_pairs", 0.0)
    # What a per-slide all-pairs scan would have screened instead, once
    # every vessel is tracked — the O(n·k) vs O(n²) comparison.
    brute_force = slides * fleet_size * (fleet_size - 1) // 2
    return {
        "fleet_size": fleet_size,
        "duration_seconds": duration,
        "positions": len(stream),
        "slides": slides,
        "processing_seconds": elapsed,
        "index_build_ms": {
            "count": index_build["count"] if index_build else 0,
            "p50": (index_build["p50"] * 1000.0) if index_build else 0.0,
            "p95": (index_build["p95"] * 1000.0) if index_build else 0.0,
            "mean": (index_build["mean"] * 1000.0) if index_build else 0.0,
        },
        "candidate_pairs": int(candidate_pairs),
        "candidate_pairs_per_slide": (
            candidate_pairs / slides if slides else 0.0
        ),
        "brute_force_pairs": brute_force,
        "candidate_fraction_of_brute_force": (
            candidate_pairs / brute_force if brute_force else 0.0
        ),
        "close_pairs": int(
            snapshot["counters"].get("pairwise.close_pairs", 0.0)
        ),
        "pair_facts": int(snapshot["counters"].get("pairwise.facts", 0.0)),
        "pair_facts_per_sec": (
            snapshot["counters"].get("pairwise.facts", 0.0) / elapsed
            if elapsed > 0 else 0.0
        ),
        "pairwise_alerts": pairwise_alerts,
        "pairwise_events_per_sec": (
            pairwise_alerts / elapsed if elapsed > 0 else 0.0
        ),
    }


def run_lint_benchmark(paths: tuple[str, ...] = ("src", "tests")) -> dict:
    """Time the project's own static analyzer over the tree.

    The ``static_analysis`` section of ``BENCH_pipeline.json``: the
    analyzer runs inside an activated obs registry (so it measures itself
    through the same instruments as the pipeline, see
    docs/STATIC_ANALYSIS.md) and reports files scanned, findings,
    suppressions, throughput, and per-rule seconds.
    """
    from repro.analysis import run_analysis

    repo_root = Path(__file__).resolve().parent.parent
    with obs.activate(obs.MetricsRegistry()) as registry:
        result = run_analysis([repo_root / path for path in paths])
        recorded_files = registry.counter("analysis.files").value
        recorded_runs = registry.histogram("analysis.run_seconds").count
    return {
        "paths": list(paths),
        "clean": not result.diagnostics,
        "findings": [d.to_dict() for d in result.diagnostics],
        **result.stats(),
        # Cross-check: the obs registry saw the same run the result did.
        "obs_files": int(recorded_files),
        "obs_runs_recorded": recorded_runs,
    }


def record_result(name: str, lines: list[str]) -> Path:
    """Write a result table under benchmarks/results/ and echo it.

    The files are the machine-readable counterpart of EXPERIMENTS.md.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    content = "\n".join(lines) + "\n"
    path.write_text(content)
    print(f"\n=== {name} ===")
    print(content)
    return path


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(
        description="End-to-end pipeline benchmark (writes BENCH_pipeline.json)"
    )
    parser.add_argument("--fleet-size", type=int, default=FLEET_SIZE,
                        help=f"vessels in the benchmark fleet "
                             f"(default: {FLEET_SIZE})")
    parser.add_argument("--duration-hours", type=float,
                        default=DURATION_SECONDS / 3600,
                        help="simulated hours of traffic (default: 24)")
    parser.add_argument("--tracking-sweep", action="store_true",
                        help="also time every Mobility Tracker kernel over "
                             "the benchmark stream (interleaved best-of-4, "
                             "parity-checked) and record per-backend "
                             "positions/sec and speedup vs scalar")
    parser.add_argument("--shard-sweep", action="store_true",
                        help="also run the process-parallel runtime at 1/2/4 "
                             "shards and record speedups vs the 1-shard "
                             "runtime baseline")
    parser.add_argument("--service", action="store_true",
                        help="also replay the stream through the live TCP "
                             "service and record ingest p50/p99 latency and "
                             "alerts/sec")
    parser.add_argument("--chaos", action="store_true",
                        help="also measure the durability layer: WAL "
                             "steady-state overhead (service bench with vs "
                             "without the ingest journal, fsync=batch) and "
                             "journal recovery time")
    parser.add_argument("--partition-drill", action="store_true",
                        help="also run the self-healing drill: sever one "
                             "gateway->runtime path mid-stream on the "
                             "chaos+tcp transport, let the cluster "
                             "supervisor detect and fail over, and assert "
                             "the resumed merged feed is byte-identical "
                             "to an undisturbed oracle run")
    parser.add_argument("--pairwise", action="store_true",
                        help="also replay the rendezvous fixture in a mixed "
                             "fleet with pairwise CE recognition on and "
                             "record grid-index build time, candidate pairs "
                             "per slide and pairwise events/sec")
    parser.add_argument("--gateway", action="store_true",
                        help="also replay the stream through a 2-gateway x "
                             "4-runtime cluster and record aggregate "
                             "alerts/sec plus per-node ingest p50/p99")
    parser.add_argument("--lint", action="store_true",
                        help="also time `python -m repro.analysis` over "
                             "src and tests and record analyzer "
                             "throughput and per-rule seconds")
    parser.add_argument("--json-path", default=BENCH_PIPELINE_PATH,
                        help="where to write the report "
                             "(default: repo-root BENCH_pipeline.json)")
    cli = parser.parse_args()
    duration_seconds = int(cli.duration_hours * 3600)

    bench_report = run_pipeline_benchmark(
        fleet_size=cli.fleet_size, duration=duration_seconds
    )
    if cli.tracking_sweep:
        bench_report["tracking_backends"] = run_tracking_backend_sweep(
            fleet_size=cli.fleet_size, duration=duration_seconds
        )
    if cli.shard_sweep:
        bench_report["shard_sweep"] = run_shard_sweep(
            fleet_size=cli.fleet_size, duration=duration_seconds
        )
    if cli.service:
        bench_report["service"] = run_service_benchmark(
            fleet_size=cli.fleet_size, duration=duration_seconds
        )
    if cli.chaos:
        bench_report["chaos"] = run_chaos_benchmark(
            fleet_size=cli.fleet_size, duration=duration_seconds
        )
    if cli.partition_drill:
        bench_report["self_healing"] = run_partition_drill(
            fleet_size=cli.fleet_size, duration=duration_seconds
        )
    if cli.pairwise:
        bench_report["pairwise"] = run_pairwise_benchmark(
            fleet_size=cli.fleet_size, duration=duration_seconds
        )
    if cli.gateway:
        bench_report["gateway"] = run_gateway_benchmark(
            fleet_size=cli.fleet_size, duration=duration_seconds
        )
    if cli.lint:
        bench_report["static_analysis"] = run_lint_benchmark()
    write_report(bench_report, cli.json_path)
    throughput = bench_report["throughput"]
    print(f"BENCH_pipeline written to {cli.json_path}")
    print(
        f"  slides={bench_report['slides']}  "
        f"positions/s={throughput['positions_per_sec']:.0f}  "
        f"events/s={throughput['events_per_sec']:.0f}  "
        f"compression={bench_report['compression_ratio']:.1%}"
    )
    for phase_name, stats in bench_report["phases"].items():
        print(
            f"  {phase_name:>14}: p50={stats['p50_ms']:.2f}ms "
            f"p95={stats['p95_ms']:.2f}ms mean={stats['mean_ms']:.2f}ms"
        )
    if cli.tracking_sweep:
        for entry in bench_report["tracking_backends"]["runs"]:
            print(
                f"  backend={entry['backend']:>6}: "
                f"{entry['best_seconds']:.3f}s  "
                f"{entry['positions_per_sec']:.0f} pos/s  "
                f"speedup={entry['speedup_vs_scalar']:.2f}x"
            )
    if cli.shard_sweep:
        for entry in bench_report["shard_sweep"]["runs"]:
            print(
                f"  shards={entry['shards']}: "
                f"{entry['processing_seconds']:.2f}s  "
                f"{entry['positions_per_sec']:.0f} pos/s  "
                f"speedup={entry['speedup_vs_1shard']:.2f}x"
            )
    if cli.service:
        svc = bench_report["service"]
        latency = svc["ingest_latency_ms"]
        print(
            f"  service: {svc['sentences_per_sec']:.0f} sentences/s  "
            f"ingest p50={latency['p50']:.2f}ms p99={latency['p99']:.2f}ms  "
            f"alerts/s={svc['alerts_per_sec']:.2f}  shed={svc['shed']}"
        )
    if cli.chaos:
        chaos = bench_report["chaos"]
        overhead = chaos["wal_overhead"]
        recovery = chaos["recovery"]
        print(
            f"  chaos: WAL overhead={overhead['overhead_pct']:.1f}% "
            f"(target <{overhead['target_pct']:.0f}%)  "
            f"recovery={recovery['replay_seconds']:.2f}s for "
            f"{recovery['journaled_records']} records "
            f"({recovery['replay_records_per_sec']:.0f} rec/s)"
        )
    if cli.partition_drill:
        drill = bench_report["self_healing"]
        print(
            f"  self-healing: detection={drill['detection_ms']:.0f}ms "
            f"failover={drill['failover_ms']:.0f}ms "
            f"mttr={drill['mttr_ms']:.0f}ms  "
            f"gap_lines={drill['feed_gap_lines']}  "
            f"reconnects={drill['subscriber_reconnects']}  "
            f"byte_identical={drill['byte_identical']}"
        )
    if cli.pairwise:
        pairwise = bench_report["pairwise"]
        build = pairwise["index_build_ms"]
        print(
            f"  pairwise: index build p50={build['p50']:.3f}ms "
            f"p95={build['p95']:.3f}ms  "
            f"candidates/slide={pairwise['candidate_pairs_per_slide']:.0f} "
            f"({pairwise['candidate_fraction_of_brute_force']:.1%} of "
            f"brute force)  "
            f"events/s={pairwise['pairwise_events_per_sec']:.2f}"
        )
    if cli.gateway:
        gw = bench_report["gateway"]
        print(
            f"  gateway: {gw['gateways']}x{gw['runtimes']} cluster  "
            f"{gw['sentences_per_sec']:.0f} sentences/s  "
            f"alerts/s={gw['alerts_per_sec']:.2f}"
        )
        for entry in gw["nodes"]:
            latency = entry["ingest_latency_ms"]
            print(
                f"  {entry['name']:>9}: lines={entry['lines']}  "
                f"link p50={latency['p50']:.2f}ms "
                f"p99={latency['p99']:.2f}ms  shed={entry['link_shed']}"
            )
    if cli.lint:
        lint = bench_report["static_analysis"]
        print(
            f"  static analysis: {lint['files']} files in "
            f"{lint['elapsed_seconds']:.2f}s "
            f"({lint['files_per_sec']:.0f} files/s)  "
            f"findings={lint['diagnostics']}  "
            f"suppressed={lint['suppressed']}  clean={lint['clean']}"
        )
