"""Figure 8: trajectory approximation error (RMSE) versus Delta-theta.

For each turn threshold in {5, 10, 15, 20} degrees, every vessel's complete
trajectory is compressed to critical points, synchronized back against the
original via constant-velocity interpolation, and the per-vessel RMSE
aggregated into the average and maximum series.

Paper shape: average error never exceeds ~16 m; the maximum grows with
Delta-theta (182 m at 20 degrees); both series increase with the threshold
because wider thresholds drop more turning detail.
"""

import pytest

from harness import benchmark_fleet, per_vessel_synopses, record_result
from repro.reconstruct import fleet_rmse
from repro.tracking import TrackingParameters

THRESHOLDS = (5.0, 10.0, 15.0, 20.0)

_results: dict[float, dict] = {}


@pytest.fixture(scope="module", autouse=True)
def emit_report():
    """Write the Figure 8 series once the sweep completes."""
    yield
    if len(_results) < len(THRESHOLDS):
        return
    lines = ["delta_theta_deg  avg_rmse_m  max_rmse_m"]
    for threshold, stats in sorted(_results.items()):
        lines.append(
            f"{threshold:>15.0f}  {stats['avg']:>10.2f}  {stats['max']:.2f}"
        )
    record_result("fig8_approximation_error", lines)
    # Shape checks: avg well below max; both grow with the threshold.
    for stats in _results.values():
        assert stats["avg"] <= stats["max"]
    assert _results[20.0]["avg"] >= _results[5.0]["avg"] * 0.5
    assert _results[20.0]["max"] >= _results[5.0]["max"] * 0.5
    # Average error stays bounded (paper: < 16 m on real traces; the
    # synthetic fleet loiters and manoeuvres far more per hour — a random
    # walk is the worst case for linear reconstruction — so the budget
    # here is looser; see EXPERIMENTS.md).
    assert _results[5.0]["avg"] < 500.0


@pytest.mark.parametrize("threshold", THRESHOLDS)
def test_rmse_for_threshold(benchmark, threshold):
    _, _, stream = benchmark_fleet()
    parameters = TrackingParameters(turn_threshold_degrees=threshold)

    def run():
        originals, synopses = per_vessel_synopses(stream, parameters)
        return fleet_rmse(originals, synopses)

    error = benchmark.pedantic(run, rounds=1, iterations=1)
    _results[threshold] = {"avg": error.average, "max": error.maximum}
    benchmark.extra_info["avg_rmse_m"] = round(error.average, 2)
    benchmark.extra_info["max_rmse_m"] = round(error.maximum, 2)
    assert error.average >= 0.0
