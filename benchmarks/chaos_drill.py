"""The out-of-process chaos drill: ``kill -9`` the live service mid-stream.

The in-process crash-recovery tests (``tests/service/test_recovery.py``)
prove byte-identical replay with an injected :class:`SimulatedCrash`;
this drill proves the same durability story against a *real* process
death, end to end over the CLI surface:

1. start ``python -m repro --serve --wal-dir ...`` on ephemeral ports;
2. stream the first part of an encoded AIS sentence stream at it and
   wait (via ``/healthz``) until slides have been processed;
3. ``SIGKILL`` the server — no drain, no journal truncation;
4. restart on the same WAL directory and require the
   ``recovered N journaled sentences`` announcement with ``N > 0``;
5. stream the rest, ``SIGINT``, and require a clean ``service drained``
   exit 0 that discharges the journal.

Run directly (``python benchmarks/chaos_drill.py``) or from the chaos
CI job.  Exit code 0 means the drill passed.  See docs/RESILIENCE.md.
"""

import json
import os
import re
import signal
import socket
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).parent.parent
SRC = REPO_ROOT / "src"

VESSELS = 15
HOURS = 4
SEED = 7

UP_LINE = re.compile(
    r"live service up: ingest=(\d+) feed=(\d+) http=(\d+)"
)
RECOVERED_LINE = re.compile(r"recovered (\d+) journaled sentences")


def build_sentences() -> list[str]:
    """Encode the same fleet the server recognizes into raw AIVDM lines."""
    sys.path.insert(0, str(SRC))
    from repro.ais import encode_position_report, wrap_aivdm
    from repro.ais.messages import PositionReport
    from repro.simulator import FleetSimulator, build_aegean_world

    simulator = FleetSimulator(
        build_aegean_world(), seed=SEED, duration_seconds=HOURS * 3600
    )
    fleet = simulator.build_mixed_fleet(VESSELS)
    lines = []
    for position in simulator.positions(fleet):
        payload, fill = encode_position_report(PositionReport(
            message_type=1,
            mmsi=position.mmsi,
            lon=position.lon,
            lat=position.lat,
            speed_knots=10.0,
            course_degrees=90.0,
            second_of_minute=position.timestamp % 60,
        ))
        lines.append(f"{position.timestamp}\t{wrap_aivdm(payload, fill)}\n")
    return lines


def start_server(wal_dir: Path, log_path: Path) -> tuple:
    """Launch ``--serve`` and return (process, ports, recovered_count)."""
    log = open(log_path, "ab")
    env = dict(os.environ, PYTHONPATH=str(SRC), PYTHONUNBUFFERED="1")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "--serve", "--port", "0",
         "--vessels", str(VESSELS), "--hours", str(HOURS),
         "--seed", str(SEED), "--wal-dir", str(wal_dir)],
        stdout=log, stderr=subprocess.STDOUT, env=env, cwd=REPO_ROOT,
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        text = log_path.read_text(errors="replace")
        match = UP_LINE.search(text)
        if match:
            recovered = RECOVERED_LINE.search(text)
            ports = {
                "ingest": int(match.group(1)),
                "feed": int(match.group(2)),
                "http": int(match.group(3)),
            }
            return process, ports, int(recovered.group(1)) if recovered else 0
        if process.poll() is not None:
            raise RuntimeError(f"server died at startup:\n{text}")
        time.sleep(0.1)
    process.kill()
    raise RuntimeError("server never announced its ports")


def send(port: int, lines: list[str]) -> None:
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        sock.sendall("".join(lines).encode("ascii"))


def healthz(port: int) -> dict:
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}/healthz", timeout=5
    ) as response:
        return json.loads(response.read())


def wait_for(predicate, timeout: float = 60.0, what: str = "condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.2)
    raise RuntimeError(f"timed out waiting for {what}")


def main() -> int:
    sentences = build_sentences()
    split = len(sentences) * 2 // 3
    print(f"drill stream: {len(sentences)} sentences, killing after {split}")

    with tempfile.TemporaryDirectory(prefix="chaos-drill-") as tmp:
        wal_dir = Path(tmp) / "wal"
        log1 = Path(tmp) / "run1.log"
        log2 = Path(tmp) / "run2.log"

        # Run 1: feed two thirds of the stream, then kill -9 mid-flight.
        process, ports, recovered = start_server(wal_dir, log1)
        assert recovered == 0, "a fresh WAL dir must recover nothing"
        send(ports["ingest"], sentences[:split])
        health = wait_for(
            lambda: (h := healthz(ports["http"]))["queue_depth"] == 0
            and h["slides"] > 0 and h,
            what="run 1 to consume the stream",
        )
        print(f"run 1: {health['slides']} slides, "
              f"{health['ingested']} ingested — SIGKILL")
        process.send_signal(signal.SIGKILL)
        process.wait(timeout=30)
        segments = list(wal_dir.glob("*.wal"))
        assert segments, "the killed run must leave journal segments behind"

        # Run 2: same WAL dir — must announce recovery, then drain clean.
        process, ports, recovered = start_server(wal_dir, log2)
        print(f"run 2: recovered {recovered} journaled sentences")
        assert recovered > 0, "restart must replay the journal"
        assert recovered <= split, "cannot recover more than was sent"
        send(ports["ingest"], sentences[split:])
        wait_for(
            lambda: healthz(ports["http"])["queue_depth"] == 0,
            what="run 2 to consume the tail",
        )
        process.send_signal(signal.SIGINT)
        returncode = process.wait(timeout=120)
        log_text = log2.read_text(errors="replace")
        assert returncode == 0, f"unclean drain (exit {returncode}):\n{log_text}"
        assert "service drained" in log_text, log_text
        leftovers = list(wal_dir.glob("*.wal"))
        assert not leftovers, f"clean drain must discharge the journal: {leftovers}"

    print("chaos drill passed: kill -9 -> recovery -> clean drain")
    return 0


if __name__ == "__main__":
    sys.exit(main())
