"""Table 4: statistics from compressed trajectories.

"This computation took place after the input stream was exhausted and all
critical points were detected" — the bench replays the full benchmark
stream through the pipeline, finalizes, reconstructs trips in the MOD, and
prints the Table 4 rows.

Paper shape (their 3-month / 6,425-vessel scale): trips an order of
magnitude more numerous than the fleet, ~25 % of critical points left
unassigned in staging (open-ended voyages), long multi-point trips.  At
this 24-hour scale the counts shrink accordingly but the structure holds:
real multi-point trips between ports plus a staged open-ended tail.
"""

import pytest

from harness import benchmark_fleet, benchmark_world, record_result
from repro.ais.stream import StreamReplayer, TimedArrival
from repro.mod import compute_od_matrix, compute_trip_statistics
from repro.pipeline import SurveillanceSystem, SystemConfig
from repro.tracking import WindowSpec

_stats: list = []


@pytest.fixture(scope="module", autouse=True)
def emit_report():
    """Write the Table 4 rows."""
    yield
    if not _stats:
        return
    stats, matrix = _stats[0]
    lines = stats.format_table().splitlines()
    lines.append("")
    lines.append("Busiest itineraries (origin -> destination: trips):")
    for (origin, destination), trips in matrix.busiest(5):
        lines.append(f"  {origin or '<unknown>'} -> {destination}: {trips}")
    record_result("table4_trip_statistics", lines)


def test_trip_statistics(benchmark):
    _, specs, stream = benchmark_fleet()
    config = SystemConfig(window=WindowSpec.of_hours(2, 1))

    def run():
        system = SurveillanceSystem(benchmark_world(), specs, config)
        arrivals = [TimedArrival(p.timestamp, p) for p in stream]
        for query_time, batch in StreamReplayer(arrivals, 3600).batches():
            system.process_slide(batch, query_time)
        system.finalize()
        return (
            compute_trip_statistics(system.database),
            compute_od_matrix(system.database),
        )

    stats, matrix = benchmark.pedantic(run, rounds=1, iterations=1)
    _stats.append((stats, matrix))
    benchmark.extra_info["trips"] = stats.trip_count
    benchmark.extra_info["avg_points_per_trip"] = round(
        stats.average_points_per_trip, 1
    )
    benchmark.extra_info["avg_distance_km"] = round(
        stats.average_distance_meters / 1000.0, 1
    )

    # Structural checks mirroring the paper's table.
    assert stats.trip_count > 0
    assert stats.average_points_per_trip >= 2
    # Open-ended voyages remain staged, as in the paper (~25 % there).
    assert stats.critical_points_in_staging > 0
    assert stats.average_distance_meters > 10_000
