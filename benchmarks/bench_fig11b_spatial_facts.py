"""Figure 11(b): CE recognition over the ME + spatial-facts stream.

The ME stream is augmented with timestamped ``close_to`` facts and the CE
definitions rewritten to join on them, so rule evaluation performs no
Haversine geometry.  Paper finding: "even though the stream used as input
increases significantly..., the average CE recognition times decrease
substantially" — and the recognized CEs do not change.

The bench reproduces both halves: the spatial-facts mode must be at least
as fast as on-demand spatial reasoning at the largest window despite its
larger input, and the recognized CE counts must match across modes.
"""

import pytest

from harness import (
    benchmark_fleet,
    benchmark_world,
    collect_movement_events,
    record_result,
)
from repro.maritime import PartitionedRecognizer

WINDOW_HOURS = (1, 2, 6, 9)
PARTITIONS = (1, 2)

_results: dict[tuple[int, int], dict] = {}


def _me_batches():
    _, specs, stream = benchmark_fleet()
    return specs, collect_movement_events(stream)


def _run_mode(specs, batches, hours, partitions, spatial_facts):
    recognizer = PartitionedRecognizer(
        benchmark_world(), specs, hours * 3600,
        partitions=partitions, spatial_facts=spatial_facts,
    )
    step_seconds = []
    total_ces = 0
    input_facts = 0
    for query_time, events in batches:
        input_facts += recognizer.ingest(events, arrival_time=query_time)
        results, timing = recognizer.step(query_time)
        step_seconds.append(timing.parallel_seconds)
        total_ces = sum(result.complex_event_count() for result in results)
    return {
        "avg_seconds": sum(step_seconds) / len(step_seconds),
        "ces": total_ces,
        "input_items": input_facts,
    }


@pytest.fixture(scope="module", autouse=True)
def emit_report():
    """Write the Figure 11(b) series once the sweep completes."""
    yield
    if len(_results) < len(WINDOW_HOURS) * len(PARTITIONS):
        return
    lines = [
        "omega_hours  partitions  avg_seconds_SF  avg_seconds_ondemand  "
        "input_items_SF  input_items_ondemand"
    ]
    for (hours, partitions), stats in sorted(_results.items()):
        lines.append(
            f"{hours:>11}  {partitions:>10}  {stats['sf']['avg_seconds']:>14.4f}  "
            f"{stats['ondemand']['avg_seconds']:>20.4f}  "
            f"{stats['sf']['input_items']:>14}  "
            f"{stats['ondemand']['input_items']:>20}"
        )
    record_result("fig11b_spatial_facts", lines)
    for (hours, partitions), stats in _results.items():
        # The SF stream is strictly larger (MEs + facts)...
        assert stats["sf"]["input_items"] > stats["ondemand"]["input_items"]
        # ...and recognition agrees across modes.
        assert stats["sf"]["ces"] == stats["ondemand"]["ces"], (hours, partitions)
    # At the largest windows, precomputed facts beat on-demand geometry.
    large = [
        (_results[(h, p)]["sf"]["avg_seconds"],
         _results[(h, p)]["ondemand"]["avg_seconds"])
        for h in WINDOW_HOURS[-2:]
        for p in PARTITIONS
    ]
    assert sum(sf for sf, _ in large) <= sum(od for _, od in large) * 1.1


@pytest.mark.parametrize("partitions", PARTITIONS)
@pytest.mark.parametrize("hours", WINDOW_HOURS)
def test_spatial_facts_mode(benchmark, hours, partitions):
    specs, batches = _me_batches()

    def run():
        return {
            "sf": _run_mode(specs, batches, hours, partitions, True),
            "ondemand": _run_mode(specs, batches, hours, partitions, False),
        }

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    _results[(hours, partitions)] = stats
    benchmark.extra_info.update(
        {
            "avg_seconds_spatial_facts": round(stats["sf"]["avg_seconds"], 4),
            "avg_seconds_ondemand": round(stats["ondemand"]["avg_seconds"], 4),
            "recognized_CEs": stats["sf"]["ces"],
        }
    )
