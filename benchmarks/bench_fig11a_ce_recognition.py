"""Figure 11(a): complex event recognition time, on-demand spatial reasoning.

Paper setup: slide beta = 1 h; window range omega in {1, 2, 6, 9} hours;
6,425 vessels and 35 areas; recognition run on one processor, then on two
processors each owning the west/east half of the monitored area.  Metric:
average CE recognition time per query.

Expected shape: recognition time grows with omega (more MEs in the working
memory), and the two-processor partitioning yields a significant speedup
(each engine sees fewer MEs and maintains fewer CE intervals).  An extra
4-partition column shows the trend continuing, as the paper suggests
("one may further distribute CE recognition by dividing further the
monitored area").
"""

import pytest

from harness import (
    benchmark_fleet,
    benchmark_world,
    collect_movement_events,
    record_result,
)
from repro.maritime import PartitionedRecognizer

WINDOW_HOURS = (1, 2, 6, 9)
PARTITIONS = (1, 2, 4)

_results: dict[tuple[int, int], dict] = {}


def _me_batches():
    _, specs, stream = benchmark_fleet()
    return specs, collect_movement_events(stream)


@pytest.fixture(scope="module", autouse=True)
def emit_report():
    """Write the Figure 11(a) series once the sweep completes."""
    yield
    if len(_results) < len(WINDOW_HOURS) * len(PARTITIONS):
        return
    lines = [
        "omega_hours  partitions  avg_recognition_seconds  "
        "window_MEs  recognized_CEs"
    ]
    for (hours, partitions), stats in sorted(_results.items()):
        lines.append(
            f"{hours:>11}  {partitions:>10}  {stats['avg_seconds']:>23.4f}  "
            f"{stats['window_mes']:>10}  {stats['ces']:>13}"
        )
    record_result("fig11a_ce_recognition", lines)
    # Shape 1: recognition time grows with the window range.
    for partitions in PARTITIONS:
        series = [_results[(h, partitions)]["avg_seconds"] for h in WINDOW_HOURS]
        assert series[-1] > series[0], series
    # Shape 2: two processors beat one at the largest window.
    assert (
        _results[(9, 2)]["avg_seconds"] < _results[(9, 1)]["avg_seconds"]
    ), "partitioning should reduce per-query recognition time"


@pytest.mark.parametrize("partitions", PARTITIONS)
@pytest.mark.parametrize("hours", WINDOW_HOURS)
def test_ce_recognition(benchmark, hours, partitions):
    specs, batches = _me_batches()

    def run():
        recognizer = PartitionedRecognizer(
            benchmark_world(), specs, hours * 3600, partitions=partitions
        )
        step_seconds = []
        total_ces = 0
        window_mes = 0
        for query_time, events in batches:
            recognizer.ingest(events, arrival_time=query_time)
            results, timing = recognizer.step(query_time)
            # Parallel wall-clock: the slowest partition.
            step_seconds.append(timing.parallel_seconds)
            total_ces = sum(result.complex_event_count() for result in results)
            window_mes = sum(
                engine.engine.working_memory.event_count()
                for engine in recognizer.recognizers
            )
        return {
            "avg_seconds": sum(step_seconds) / len(step_seconds),
            "ces": total_ces,
            "window_mes": window_mes,
        }

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    _results[(hours, partitions)] = stats
    benchmark.extra_info.update(
        {
            "avg_recognition_seconds": round(stats["avg_seconds"], 4),
            "window_MEs": stats["window_mes"],
            "recognized_CEs": stats["ces"],
        }
    )
