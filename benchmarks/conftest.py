"""Benchmark suite configuration.

Run with::

    pytest benchmarks/ --benchmark-only

Each bench regenerates one table or figure of the paper (see the module
docstrings and DESIGN.md's per-experiment index).  Result tables are written
to ``benchmarks/results/`` as a side effect.
"""

import sys
from pathlib import Path

# Make `harness` importable regardless of the pytest rootdir.
sys.path.insert(0, str(Path(__file__).parent))
