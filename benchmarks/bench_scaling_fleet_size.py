"""Scalability sweep: end-to-end cost versus fleet size.

The paper's abstract claims the system "scales to high velocity data
streams expressing the current activity of large fleets"; Table 2 fixes
N = 6,425.  This extra bench sweeps the fleet size and verifies that both
pipeline stages scale gracefully: per-slide tracking cost grows roughly
linearly with the fleet (stream volume), and CE recognition cost grows with
the ME volume rather than the raw position volume — the compression paying
off downstream.
"""

import pytest

from harness import benchmark_world, record_result
from repro.ais.stream import StreamReplayer, TimedArrival
from repro.maritime import MaritimeRecognizer
from repro.simulator import FleetSimulator
from repro.tracking import Compressor, MobilityTracker, WindowSpec

FLEET_SIZES = (50, 100, 200)
DURATION = 8 * 3600

_results: dict[int, dict] = {}


@pytest.fixture(scope="module", autouse=True)
def emit_report():
    """Write the scaling table."""
    yield
    if len(_results) < len(FLEET_SIZES):
        return
    lines = [
        "fleet  positions  MEs    tracking_s/slide  recognition_s/step  "
        "positions_per_ME"
    ]
    for size, stats in sorted(_results.items()):
        lines.append(
            f"{size:>5}  {stats['positions']:>9}  {stats['mes']:>5}  "
            f"{stats['tracking']:>16.4f}  {stats['recognition']:>18.4f}  "
            f"{stats['positions'] / max(1, stats['mes']):>16.1f}"
        )
    record_result("scaling_fleet_size", lines)
    # Tracking cost grows with the fleet; recognition stays sub-linear in
    # raw positions thanks to the critical-point reduction.
    assert _results[200]["tracking"] > _results[50]["tracking"]
    ratio_positions = _results[200]["positions"] / _results[50]["positions"]
    ratio_recognition = max(_results[200]["recognition"], 1e-9) / max(
        _results[50]["recognition"], 1e-9
    )
    assert ratio_recognition < ratio_positions * 2.0


@pytest.mark.parametrize("size", FLEET_SIZES)
def test_fleet_scaling(benchmark, size):
    simulator = FleetSimulator(
        benchmark_world(), seed=909, duration_seconds=DURATION
    )
    fleet = simulator.build_mixed_fleet(size)
    specs = {vessel.mmsi: vessel.spec for vessel in fleet}
    stream = simulator.positions(fleet)
    window = WindowSpec.of_hours(2, 0.5)

    def run():
        import time

        tracker = MobilityTracker()
        compressor = Compressor(window)
        recognizer = MaritimeRecognizer(
            benchmark_world(), specs, window_seconds=2 * 3600
        )
        arrivals = [TimedArrival(p.timestamp, p) for p in stream]
        tracking_costs = []
        recognition_costs = []
        total_mes = 0
        for query_time, batch in StreamReplayer(arrivals, 1800).batches():
            started = time.perf_counter()
            events = tracker.process_batch(batch)
            compressor.slide(events, query_time, raw_position_count=len(batch))
            tracking_costs.append(time.perf_counter() - started)
            total_mes += recognizer.ingest(events, arrival_time=query_time)
            recognizer.step(query_time)
            recognition_costs.append(recognizer.last_step_seconds)
        return {
            "positions": len(stream),
            "mes": total_mes,
            "tracking": sum(tracking_costs) / len(tracking_costs),
            "recognition": sum(recognition_costs) / len(recognition_costs),
        }

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    _results[size] = stats
    benchmark.extra_info.update(
        {
            "positions": stats["positions"],
            "tracking_s_per_slide": round(stats["tracking"], 4),
            "recognition_s_per_step": round(stats["recognition"], 4),
        }
    )
