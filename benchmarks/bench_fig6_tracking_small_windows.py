"""Figure 6(a): online mobility tracking cost per window — small ranges.

Paper setup: window ranges omega of 1 h and 2 h, slide steps beta of 5-30
minutes, original arrival rate.  Reported metric: average per-slide cost of
updating the window, evicting expired tuples, detecting trajectory events
and reporting critical points.

Expected shape: cost escalates roughly linearly as the window slides less
often (larger beta means more fresh positions per slide), and stays far
below the slide period (critical points are issued "almost instantly").
"""

import pytest

from harness import benchmark_fleet, record_result, replay_tracking
from repro.tracking import WindowSpec

RANGES_HOURS = (1, 2)
SLIDES_MINUTES = (5, 10, 15, 20, 30)

_results: dict[tuple[float, float], dict] = {}


@pytest.fixture(scope="module", autouse=True)
def emit_report():
    """Write the Figure 6(a) series once the sweep completes."""
    yield
    if len(_results) < len(RANGES_HOURS) * len(SLIDES_MINUTES):
        return
    lines = ["omega_hours  beta_minutes  avg_slide_seconds"]
    for (range_hours, slide_minutes), stats in sorted(_results.items()):
        lines.append(
            f"{range_hours:>11}  {slide_minutes:>12}  "
            f"{stats['average_slide_seconds']:.4f}"
        )
    record_result("fig6a_tracking_small_windows", lines)
    for range_hours in RANGES_HOURS:
        series = [
            _results[(range_hours, slide)]["average_slide_seconds"]
            for slide in SLIDES_MINUTES
        ]
        # Larger beta -> more positions per slide -> higher per-slide cost.
        assert series[-1] > series[0], (
            f"expected cost to grow with beta for omega={range_hours}h: {series}"
        )


@pytest.mark.parametrize("range_hours", RANGES_HOURS)
@pytest.mark.parametrize("slide_minutes", SLIDES_MINUTES)
def test_tracking_cost_small_windows(benchmark, range_hours, slide_minutes):
    _, _, stream = benchmark_fleet()
    window = WindowSpec.of_minutes(range_hours * 60, slide_minutes)

    def run():
        return replay_tracking(stream, window)

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    _results[(range_hours, slide_minutes)] = stats
    benchmark.extra_info["avg_slide_seconds"] = stats["average_slide_seconds"]
    benchmark.extra_info["slides"] = stats["slides"]
    # The tracker keeps up: each slide is processed well within the slide
    # period, as in the paper ("never takes more than 500 ms" at their
    # scale; the bound here is the real-time budget itself).
    assert stats["average_slide_seconds"] < slide_minutes * 60
