"""Figure 9: critical-point volume and compression ratio versus Delta-theta.

Paper setup: omega = 6 h, beta = 1 h, turn threshold swept over {5, 10, 15,
20} degrees.  Paper shape: compression ratio stays close to 94 % (about 6 %
of locations survive as critical), and "every further increase by 5 degrees
in turn threshold results in about 5 % drop in the total amount of critical
points".
"""

import pytest

from harness import benchmark_fleet, record_result, replay_tracking
from repro.tracking import TrackingParameters, WindowSpec

THRESHOLDS = (5.0, 10.0, 15.0, 20.0)

_results: dict[float, dict] = {}


@pytest.fixture(scope="module", autouse=True)
def emit_report():
    """Write the Figure 9 series once the sweep completes."""
    yield
    if len(_results) < len(THRESHOLDS):
        return
    lines = ["delta_theta_deg  critical_points  compression_ratio"]
    for threshold, stats in sorted(_results.items()):
        lines.append(
            f"{threshold:>15.0f}  {stats['critical_points']:>15}  "
            f"{stats['compression_ratio']:.4f}"
        )
    record_result("fig9_compression", lines)
    counts = [_results[t]["critical_points"] for t in THRESHOLDS]
    ratios = [_results[t]["compression_ratio"] for t in THRESHOLDS]
    # Wider thresholds keep fewer (or equal) critical points...
    assert counts[0] >= counts[-1]
    # ...and the compression ratio stays high throughout the sweep.
    assert min(ratios) > 0.85


@pytest.mark.parametrize("threshold", THRESHOLDS)
def test_compression_for_threshold(benchmark, threshold):
    _, _, stream = benchmark_fleet()
    window = WindowSpec.of_hours(6, 1)
    parameters = TrackingParameters(turn_threshold_degrees=threshold)

    def run():
        return replay_tracking(stream, window, parameters)

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    _results[threshold] = stats
    benchmark.extra_info["critical_points"] = stats["critical_points"]
    benchmark.extra_info["compression_ratio"] = round(
        stats["compression_ratio"], 4
    )
