"""Figure 7: online tracking cost under increased arrival rates.

The paper's stress test admits bigger chunks at up to rho = 10,000
positions/sec — every ship reporting almost twice per second — with
omega = 10 min and beta = 1 min, and finds latency grows with the rate but
the tracker "never takes more than a few seconds to respond, well before
the next window slide".

Here the rate is scaled by replaying the base fleet as 1x/2x/5x/10x
replicated fleets (fresh MMSIs, identical dynamics), which multiplies the
positions per slide exactly like the paper's bigger chunks.
"""

import pytest

from harness import benchmark_fleet, record_result, replay_tracking
from repro.simulator import replicate_positions
from repro.tracking import WindowSpec

RATE_FACTORS = (1, 2, 5, 10)

_results: dict[int, dict] = {}


@pytest.fixture(scope="module", autouse=True)
def emit_report():
    """Write the Figure 7 series once the sweep completes."""
    yield
    if len(_results) < len(RATE_FACTORS):
        return
    lines = ["rate_factor  positions  avg_slide_seconds  max_slide_seconds"]
    for factor, stats in sorted(_results.items()):
        lines.append(
            f"{factor:>11}  {stats['positions']:>9}  "
            f"{stats['average_slide_seconds']:>17.4f}  "
            f"{stats['max_slide_seconds']:.4f}"
        )
    record_result("fig7_arrival_rates", lines)
    # Latency grows with the arrival rate, but stays within the slide.
    assert _results[10]["average_slide_seconds"] > _results[1][
        "average_slide_seconds"
    ]
    assert _results[10]["average_slide_seconds"] < 60.0


@pytest.mark.parametrize("factor", RATE_FACTORS)
def test_tracking_under_rate(benchmark, factor):
    # A shorter base stream keeps the 10x replay tractable: the metric is
    # per-slide cost, which depends on positions per slide, not duration.
    _, _, stream = benchmark_fleet(duration=4 * 3600)
    amplified = replicate_positions(stream, factor)
    window = WindowSpec.of_minutes(10, 1)

    def run():
        return replay_tracking(amplified, window)

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    _results[factor] = stats
    benchmark.extra_info["avg_slide_seconds"] = stats["average_slide_seconds"]
    benchmark.extra_info["positions"] = stats["positions"]
