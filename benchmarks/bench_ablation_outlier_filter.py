"""Ablation: off-course outlier filtering on versus off.

Section 3.1 argues that accepting an off-course position "would drastically
distort the resulting trajectory representation" and that "an outlier
breaking the subsequence of instantaneous pause events could prevent
characterization of a long-term stop, and instead yield two successive such
stops very close to each other".

The ablation disables the filter (by making its thresholds unreachable) on
a noisy stream with injected GPS jumps and compares: (a) the approximation
error of the resulting synopses, and (b) the number of critical points
(spurious turns/speed changes at every jump inflate it).
"""

import pytest

from harness import benchmark_world, per_vessel_synopses, record_result
from repro.reconstruct import fleet_rmse
from repro.simulator import FleetSimulator, NoiseModel
from repro.tracking import TrackingParameters

#: Aggressive outlier injection: ~2 % of fixes jump 1-4 km off course.
NOISY = NoiseModel(
    gps_sigma_meters=8.0,
    outlier_probability=0.02,
    outlier_min_meters=1000.0,
    outlier_max_meters=4000.0,
)

FILTER_ON = TrackingParameters()
#: The filter never fires: an off-course point needs an implied speed above
#: 10,000x the mean, i.e. never.
FILTER_OFF = TrackingParameters(
    outlier_speed_factor=10_000.0, outlier_min_speed_knots=100_000.0
)

_results: dict[str, dict] = {}


def _noisy_stream():
    simulator = FleetSimulator(
        benchmark_world(), seed=77, duration_seconds=8 * 3600, noise=NOISY
    )
    fleet = simulator.build_mixed_fleet(60)
    return simulator.positions(fleet)


@pytest.fixture(scope="module", autouse=True)
def emit_report():
    """Write the ablation comparison."""
    yield
    if len(_results) < 2:
        return
    lines = ["variant      avg_rmse_m  max_rmse_m  critical_points"]
    for label, stats in sorted(_results.items()):
        lines.append(
            f"{label:<11}  {stats['avg']:>10.2f}  {stats['max']:>10.2f}  "
            f"{stats['critical_points']:>15}"
        )
    record_result("ablation_outlier_filter", lines)
    # Disabling the filter lets injected jumps pollute the synopsis: more
    # (spurious) critical points and no accuracy gain for them.
    assert (
        _results["filter_off"]["critical_points"]
        > _results["filter_on"]["critical_points"]
    )


@pytest.mark.parametrize(
    "label,parameters",
    [("filter_on", FILTER_ON), ("filter_off", FILTER_OFF)],
    ids=["filter_on", "filter_off"],
)
def test_outlier_filter_ablation(benchmark, label, parameters):
    stream = _noisy_stream()

    def run():
        originals, synopses = per_vessel_synopses(stream, parameters)
        error = fleet_rmse(originals, synopses)
        critical = sum(len(points) for points in synopses.values())
        return {
            "avg": error.average,
            "max": error.maximum,
            "critical_points": critical,
        }

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    _results[label] = stats
    benchmark.extra_info.update(
        {
            "avg_rmse_m": round(stats["avg"], 2),
            "critical_points": stats["critical_points"],
        }
    )
