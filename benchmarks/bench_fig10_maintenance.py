"""Figure 10: trajectory maintenance cost per window slide, by phase.

The paper plots the average per-slide cost of the four maintenance phases —
online tracking, staging of delta points to disk, trajectory reconstruction
into trips, and loading into the MOD — for (omega=1 h, beta=10 min),
(omega=6 h, beta=1 h) and (omega=24 h, beta=1 h).

Expected shape: tracking dominates (it filters the full raw volume) and
grows with the window size; the staging / reconstruction / loading phases
are small and roughly insensitive to omega, since they see only the reduced
volume of critical points.
"""

import pytest

from harness import benchmark_fleet, record_result
from repro.ais.stream import StreamReplayer, TimedArrival
from repro.pipeline import SurveillanceSystem, SystemConfig
from repro.tracking import WindowSpec

CONFIGS = (
    ("1h/10min", WindowSpec.of_minutes(60, 10)),
    ("6h/1h", WindowSpec.of_hours(6, 1)),
    ("24h/1h", WindowSpec.of_hours(24, 1)),
)
PHASES = ("tracking", "staging", "reconstruction", "loading")

_results: dict[str, dict[str, float]] = {}


@pytest.fixture(scope="module", autouse=True)
def emit_report():
    """Write the Figure 10 stacked series once the sweep completes."""
    yield
    if len(_results) < len(CONFIGS):
        return
    header = "window      " + "".join(f"{phase:>16}" for phase in PHASES)
    lines = [header]
    for label, _ in CONFIGS:
        averages = _results[label]
        lines.append(
            f"{label:<12}"
            + "".join(f"{averages.get(phase, 0.0):>16.5f}" for phase in PHASES)
        )
    record_result("fig10_maintenance", lines)
    for label, _ in CONFIGS:
        averages = _results[label]
        offline = (
            averages.get("staging", 0.0)
            + averages.get("reconstruction", 0.0)
            + averages.get("loading", 0.0)
        )
        # Tracking dominates the maintenance cost.
        assert averages["tracking"] > offline, (label, averages)


@pytest.mark.parametrize("label,window", CONFIGS, ids=[c[0] for c in CONFIGS])
def test_maintenance_phases(benchmark, label, window, tmp_path):
    # A stream twice the largest window range, so that even the 24 h window
    # evicts delta points and the offline phases have work to do (the
    # paper's 3-month stream dwarfed every window).
    _, specs, stream = benchmark_fleet(duration=48 * 3600)
    from harness import benchmark_world

    config = SystemConfig(
        window=window,
        enable_recognition=False,
        database_path=str(tmp_path / "mod.sqlite"),  # staging goes to disk
    )

    def run():
        system = SurveillanceSystem(benchmark_world(), specs, config)
        arrivals = [TimedArrival(p.timestamp, p) for p in stream]
        for query_time, batch in StreamReplayer(
            arrivals, window.slide_seconds
        ).batches():
            system.process_slide(batch, query_time)
        return system.timings.averages()

    averages = benchmark.pedantic(run, rounds=1, iterations=1)
    _results[label] = averages
    for phase in PHASES:
        benchmark.extra_info[phase] = round(averages.get(phase, 0.0), 5)
